package farm

import (
	"sync"
	"time"

	"a1/internal/fabric"
)

// Config parameterizes a FaRM cluster.
type Config struct {
	// RegionSize is the maximum bytes per region. Production FaRM uses 2GB
	// regions; tests and simulations use smaller regions so that data
	// spreads across many machines at laptop scale.
	RegionSize uint32
	// Replicas is the replication factor (3 in production: one primary and
	// two backups across fault domains).
	Replicas int
	// ClockUncertainty is the synchronized-clock error bound waited out at
	// commit (FaRMv2 §5.2).
	ClockUncertainty time.Duration
}

// DefaultConfig returns production-shaped parameters scaled for simulation.
func DefaultConfig() Config {
	return Config{
		RegionSize:       16 << 20,
		Replicas:         3,
		ClockUncertainty: 0,
	}
}

// Machine is the per-machine FaRM process state: everything that does NOT
// survive a process crash (caches, in-flight transactions). Region data
// itself lives in the Driver and does survive (fast restart, §5.3).
type Machine struct {
	ID fabric.MachineID

	mu        sync.Mutex
	nodeCache map[Addr]cachedNode // B-tree inner-node cache
	epoch     uint64              // bumped on process restart
}

func newMachine(id fabric.MachineID) *Machine {
	return &Machine{ID: id, nodeCache: make(map[Addr]cachedNode)}
}

// Farm is a FaRM cluster: machines, drivers, the configuration manager and
// the global clock. It exposes the transactional object store the rest of
// A1 is built on.
type Farm struct {
	fab      *fabric.Fabric
	cfg      Config
	cm       *CM
	clock    *Clock
	drivers  []*Driver
	machines []*Machine

	pinMu sync.Mutex
	pins  map[uint64]int // snapshot ts -> active query count (blocks GC)
}

// Open creates a FaRM cluster over the fabric.
func Open(fab *fabric.Fabric, cfg Config) *Farm {
	if cfg.RegionSize == 0 {
		cfg.RegionSize = DefaultConfig().RegionSize
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 3
	}
	if cfg.Replicas > fab.Machines() {
		cfg.Replicas = fab.Machines()
	}
	f := &Farm{
		fab:  fab,
		cfg:  cfg,
		pins: make(map[uint64]int),
	}
	f.cm = newCM(f)
	f.clock = NewClock(fab, cfg.ClockUncertainty)
	f.drivers = make([]*Driver, fab.Machines())
	f.machines = make([]*Machine, fab.Machines())
	for i := range f.drivers {
		f.drivers[i] = NewDriver()
		f.machines[i] = newMachine(fabric.MachineID(i))
	}
	return f
}

// Fabric returns the communication fabric.
func (f *Farm) Fabric() *fabric.Fabric { return f.fab }

// Clock returns the global clock.
func (f *Farm) Clock() *Clock { return f.clock }

// Config returns the cluster configuration.
func (f *Farm) Config() Config { return f.cfg }

// CM returns the configuration manager.
func (f *Farm) CM() *CM { return f.cm }

// Machine returns the process state of machine m.
func (f *Farm) Machine(m fabric.MachineID) *Machine { return f.machines[m] }

// PrimaryOf maps an address to the machine hosting the primary replica of
// its region — the local metadata operation the query engine uses to ship
// operators to data (paper §3.4).
func (f *Farm) PrimaryOf(c *fabric.Ctx, a Addr) (fabric.MachineID, error) {
	return f.cm.lookup(c, a.Region())
}

// regionAt returns the replica of region id hosted on machine m.
func (f *Farm) regionAt(m fabric.MachineID, id RegionID) (*Region, bool) {
	return f.drivers[m].Get(id)
}

// allocSlot reserves a slot for payload bytes, preferring a region whose
// primary is the machine `near` (locality, paper §2.2). It returns the new
// address and the class-rounded slot so the caller can track replication.
func (f *Farm) allocSlot(c *fabric.Ctx, near fabric.MachineID, payload uint32) (Addr, error) {
	// Try regions already owned by the target machine.
	for _, id := range f.cm.primariesOn(near) {
		r, ok := f.regionAt(near, id)
		if !ok {
			continue
		}
		r.mu.Lock()
		if r.alloc.hasSpace(payload) {
			off, err := r.allocLocked(payload)
			r.mu.Unlock()
			if err == nil {
				return MakeAddr(id, off), nil
			}
			continue
		}
		r.mu.Unlock()
	}
	// Create a new region with its primary on the target machine.
	id, err := f.cm.createRegion(c, near)
	if err != nil {
		return NilAddr, err
	}
	r, ok := f.regionAt(near, id)
	if !ok {
		// CM placed the primary elsewhere (machine down).
		primary, perr := f.cm.lookup(c, id)
		if perr != nil {
			return NilAddr, perr
		}
		r, ok = f.regionAt(primary, id)
		if !ok {
			return NilAddr, ErrRegionLost
		}
	}
	r.mu.Lock()
	off, err := r.allocLocked(payload)
	r.mu.Unlock()
	if err != nil {
		return NilAddr, err
	}
	return MakeAddr(id, off), nil
}

// PinSnapshot registers an active reader at timestamp ts so version GC will
// not collect versions it may still need (paper §2.2: snapshot versions are
// not garbage collected until the query runs to completion). The returned
// function releases the pin.
func (f *Farm) PinSnapshot(ts uint64) func() {
	f.pinMu.Lock()
	f.pins[ts]++
	f.pinMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			f.pinMu.Lock()
			if f.pins[ts]--; f.pins[ts] <= 0 {
				delete(f.pins, ts)
			}
			f.pinMu.Unlock()
		})
	}
}

// gcWatermark returns the highest timestamp below which old versions are
// reclaimable: the minimum pinned snapshot, or the current clock if no
// reader is active.
func (f *Farm) gcWatermark() uint64 {
	f.pinMu.Lock()
	defer f.pinMu.Unlock()
	min := f.clock.Current()
	for ts := range f.pins {
		if ts < min {
			min = ts
		}
	}
	return min
}

// GCVersions reclaims version-chain records that no active or future reader
// can need, and fully reclaims objects whose visible version is a
// tombstone. It returns the number of slots freed. GC decisions are made at
// each region's primary and mirrored to backups.
func (f *Farm) GCVersions(c *fabric.Ctx) int {
	before := f.gcWatermark()
	freedTotal := 0
	for _, id := range f.cm.regionIDs() {
		replicas := f.cm.replicasOf(id)
		if len(replicas) == 0 {
			continue
		}
		primary := replicas[0]
		r, ok := f.regionAt(primary, id)
		if !ok {
			continue
		}
		freed := gcRegion(r, before)
		freedTotal += len(freed)
		if len(freed) == 0 {
			continue
		}
		for _, b := range replicas[1:] {
			if br, ok := f.regionAt(b, id); ok {
				br.mu.Lock()
				for _, off := range freed {
					br.freeLocked(off)
				}
				br.mu.Unlock()
			}
		}
	}
	return freedTotal
}

// gcRegion trims version chains in one region. For each live object it
// keeps the newest version visible at `before` and everything newer, frees
// strictly older records, and reclaims whole objects whose visible version
// is a tombstone. It returns the freed offsets (for backup mirroring).
func gcRegion(r *Region, before uint64) []uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var freed []uint32
	heads := r.alloc.liveOffsets()
	isChainRec := markChainRecords(r, heads)
	for _, off := range heads {
		if isChainRec[off] {
			continue // version record, handled via its head
		}
		vw := r.versionWord(off)
		ts := versionTs(vw)
		if versionLocked(vw) {
			continue // commit in progress
		}
		if versionTombed(vw) && ts <= before {
			// Deleted and visible to nobody current: reclaim object + chain.
			freed = appendChainFrees(r, r.older(off), freed)
			r.setOlder(off, NilPtr)
			r.freeLocked(off)
			freed = append(freed, off)
			continue
		}
		if ts <= before {
			// Head itself is visible at the watermark: entire chain dead.
			old := r.older(off)
			if !old.IsNil() {
				freed = appendChainFrees(r, old, freed)
				r.setOlder(off, NilPtr)
			}
			continue
		}
		// Walk to the newest record with ts <= before; keep it, free tail.
		prevOff := off
		p := r.older(off)
		for !p.IsNil() && p.Addr.Region() == r.id {
			recOff := p.Addr.Offset()
			if !r.alloc.isLive(recOff) {
				break
			}
			if versionTs(r.versionWord(recOff)) <= before {
				tail := r.older(recOff)
				if !tail.IsNil() {
					freed = appendChainFrees(r, tail, freed)
					r.setOlder(recOff, NilPtr)
				}
				break
			}
			prevOff = recOff
			p = r.older(recOff)
		}
		_ = prevOff
	}
	return freed
}

// markChainRecords identifies which live slots are old-version records
// (reachable through some head's older pointer) rather than object heads.
func markChainRecords(r *Region, heads []uint32) map[uint32]bool {
	rec := make(map[uint32]bool)
	for _, off := range heads {
		p := r.older(off)
		for !p.IsNil() && p.Addr.Region() == r.id {
			ro := p.Addr.Offset()
			if rec[ro] || !r.alloc.isLive(ro) {
				break
			}
			rec[ro] = true
			p = r.older(ro)
		}
	}
	return rec
}

func appendChainFrees(r *Region, p Ptr, freed []uint32) []uint32 {
	for !p.IsNil() && p.Addr.Region() == r.id {
		off := p.Addr.Offset()
		if !r.alloc.isLive(off) {
			break
		}
		next := r.older(off)
		r.freeLocked(off)
		freed = append(freed, off)
		p = next
	}
	return freed
}

// KillMachine simulates a machine-level failure (power loss): the machine
// drops off the network and its driver memory is wiped. The CM fails over
// its regions.
func (f *Farm) KillMachine(c *fabric.Ctx, m fabric.MachineID) {
	f.fab.Fail(m)
	f.drivers[m].Wipe()
	f.cm.handleFailure(c, m)
}

// KillMachines simulates a correlated failure — e.g. power loss hitting
// several fault domains at once: every machine drops off the network before
// the CM can re-replicate anything. Regions with all replicas in the blast
// radius are permanently lost (the disaster-recovery case, §4).
func (f *Farm) KillMachines(c *fabric.Ctx, ms ...fabric.MachineID) {
	for _, m := range ms {
		f.fab.Fail(m)
		f.drivers[m].Wipe()
	}
	for _, m := range ms {
		f.cm.handleFailure(c, m)
	}
}

// CrashProcess simulates a FaRM/A1 process crash: process state (caches,
// transactions) is lost but driver memory survives. The machine is
// unreachable until RestartProcess.
func (f *Farm) CrashProcess(c *fabric.Ctx, m fabric.MachineID) {
	f.fab.Fail(m)
	f.machines[m] = newMachine(m)
	f.cm.handleFailure(c, m)
}

// CrashProcesses crashes several processes at once (a correlated software
// outage — e.g. a bad deployment hitting all three replicas of a region,
// §5.3). Driver memory survives on every host.
func (f *Farm) CrashProcesses(c *fabric.Ctx, ms ...fabric.MachineID) {
	for _, m := range ms {
		f.fab.Fail(m)
		f.machines[m] = newMachine(m)
	}
	for _, m := range ms {
		f.cm.handleFailure(c, m)
	}
}

// RestartProcess performs a fast restart of machine m: the new process
// re-maps region replicas from driver memory and rejoins the cluster,
// recovering lost regions without data loss (paper §5.3).
func (f *Farm) RestartProcess(c *fabric.Ctx, m fabric.MachineID) {
	f.fab.Restore(m)
	f.machines[m].mu.Lock()
	f.machines[m].epoch++
	f.machines[m].mu.Unlock()
	f.cm.handleRestart(c, m)
}

// RebootMachine restores a machine whose memory was wiped (after
// KillMachine). Its data is gone; only disaster recovery can restore it.
func (f *Farm) RebootMachine(c *fabric.Ctx, m fabric.MachineID) {
	f.fab.Restore(m)
	f.machines[m] = newMachine(m)
	f.cm.handleRestart(c, m)
}

// UsedBytes reports total allocated bytes across primary replicas.
func (f *Farm) UsedBytes() uint64 {
	var total uint64
	for _, id := range f.cm.regionIDs() {
		reps := f.cm.replicasOf(id)
		if len(reps) == 0 {
			continue
		}
		if r, ok := f.regionAt(reps[0], id); ok {
			total += r.usedBytes()
		}
	}
	return total
}
