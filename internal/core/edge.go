package core

import (
	"encoding/binary"
	"fmt"

	"a1/internal/bond"
	"a1/internal/farm"
)

// Edge storage (paper §3.2, Figure 7): an edge from v1 to v2 is a 3-part
// object — an outgoing half-edge ⟨edge type, v2 pointer, data pointer⟩ on
// v1, an incoming half-edge ⟨edge type, v1 pointer, data pointer⟩ on v2,
// and an optional data object. Half-edges for a vertex are stored in a
// single variable-length FaRM object co-located with the vertex, resized in
// a geometric progression; past ~1000 edges they spill into a per-graph
// global B-tree keyed ⟨src vertex pointer, edge type, dst vertex pointer⟩.
// Keeping both directions makes deletes safe: removing v2 walks its
// incoming list and erases the forward half-edges pointing at it, so no
// dangling edge can survive — the TAO anomaly A1 was built to eliminate.

// Direction selects a vertex's outgoing or incoming half-edges.
type Direction int

const (
	// DirOut enumerates edges leaving the vertex.
	DirOut Direction = iota
	// DirIn enumerates edges arriving at the vertex.
	DirIn
)

func (d Direction) String() string {
	if d == DirOut {
		return "out"
	}
	return "in"
}

// HalfEdge is one entry of a vertex's edge list.
type HalfEdge struct {
	TypeID uint32
	Other  VertexPtr // the far endpoint's vertex pointer
	Data   farm.Ptr  // edge data object (nil if the edge carries no data)
}

// halfEdgeBytes is the packed entry size.
const halfEdgeBytes = 28

// initialInlineEntries sizes a vertex's first edge-list object.
const initialInlineEntries = 4

func encodeHalfEdge(dst []byte, he HalfEdge) {
	binary.LittleEndian.PutUint32(dst[0:], he.TypeID)
	putPtr(dst[4:], he.Other)
	putPtr(dst[16:], he.Data)
}

func decodeHalfEdge(b []byte) HalfEdge {
	return HalfEdge{
		TypeID: binary.LittleEndian.Uint32(b[0:]),
		Other:  getPtr(b[4:]),
		Data:   getPtr(b[16:]),
	}
}

// edgeTreeKey builds the global edge-tree key ⟨this, etype, other⟩. The
// out-tree keys start with the source pointer, the in-tree keys with the
// destination pointer, so per-vertex enumeration is a prefix scan.
func edgeTreeKey(this farm.Addr, etype uint32, other farm.Addr) []byte {
	k := make([]byte, 0, 20)
	k = binary.BigEndian.AppendUint64(k, uint64(this))
	k = binary.BigEndian.AppendUint32(k, etype)
	k = binary.BigEndian.AppendUint64(k, uint64(other))
	return k
}

func edgeTreePrefix(this farm.Addr, etype uint32, withType bool) []byte {
	k := make([]byte, 0, 12)
	k = binary.BigEndian.AppendUint64(k, uint64(this))
	if withType {
		k = binary.BigEndian.AppendUint32(k, etype)
	}
	return k
}

// treeValue packs ⟨data ptr, other vertex size⟩ so enumeration can rebuild
// the half-edge from key+value. Since vertex headers have a fixed size, the
// value is just the data pointer.
func edgeTreeFor(g *Graph, gm *graphMeta, dir Direction) *farm.BTree {
	if dir == DirOut {
		return farm.OpenBTree(g.store.farm, gm.OutTree)
	}
	return farm.OpenBTree(g.store.farm, gm.InTree)
}

func (h *vertexHdr) listRef(dir Direction) (farm.Ptr, uint32, bool) {
	if dir == DirOut {
		return h.outList, h.outCount, h.flags&flagOutSpilled != 0
	}
	return h.inList, h.inCount, h.flags&flagInSpilled != 0
}

func (h *vertexHdr) setListRef(dir Direction, list farm.Ptr, count uint32, spilled bool) {
	if dir == DirOut {
		h.outList, h.outCount = list, count
		if spilled {
			h.flags |= flagOutSpilled
		} else {
			h.flags &^= flagOutSpilled
		}
		return
	}
	h.inList, h.inCount = list, count
	if spilled {
		h.flags |= flagInSpilled
	} else {
		h.flags &^= flagInSpilled
	}
}

// enumerateHalfEdges walks one direction of a vertex's edge list,
// optionally filtered by edge type id (0 = all; type ids start at 1).
func (g *Graph) enumerateHalfEdges(tx *farm.Tx, gm *graphMeta, vp VertexPtr, hdr *vertexHdr, dir Direction, etypeFilter uint32, fn func(HalfEdge) bool) error {
	return g.enumerateHalfEdgesWith(tx, gm, vp, hdr, dir, etypeFilter, fn, nil)
}

// enumerateHalfEdgesWith is enumerateHalfEdges with optional scratch
// buffers: when s is non-nil the inline half-edge list is read into
// s.data instead of a fresh tracked buffer (the list is fully decoded
// into HalfEdge values before fn runs, so the bytes never escape).
func (g *Graph) enumerateHalfEdgesWith(tx *farm.Tx, gm *graphMeta, vp VertexPtr, hdr *vertexHdr, dir Direction, etypeFilter uint32, fn func(HalfEdge) bool, s *readScratch) error {
	list, count, spilled := hdr.listRef(dir)
	if spilled {
		tree := edgeTreeFor(g, gm, dir)
		prefix := edgeTreePrefix(vp.Addr, etypeFilter, etypeFilter != 0)
		return tree.Scan(tx, prefix, prefixEnd(prefix), func(k, v []byte) bool {
			if len(k) != 20 {
				return true
			}
			he := HalfEdge{
				TypeID: binary.BigEndian.Uint32(k[8:]),
				Other:  farm.Ptr{Addr: farm.Addr(binary.BigEndian.Uint64(k[12:])), Size: vertexHdrSize},
				Data:   valuePtr(v),
			}
			return fn(he)
		})
	}
	if count == 0 || list.IsNil() {
		return nil
	}
	var data []byte
	if s != nil {
		d, err := tx.ReadSizedInto(list.Addr, list.Size, s.data)
		if err != nil {
			return err
		}
		s.data = d
		data = d
	} else {
		buf, err := tx.Read(list)
		if err != nil {
			return err
		}
		data = buf.Data()
	}
	for i := 0; i+halfEdgeBytes <= len(data); i += halfEdgeBytes {
		he := decodeHalfEdge(data[i:])
		if etypeFilter != 0 && he.TypeID != etypeFilter {
			continue
		}
		if !fn(he) {
			return nil
		}
	}
	return nil
}

// findHalfEdge locates a specific half-edge ⟨etype, other⟩.
func (g *Graph) findHalfEdge(tx *farm.Tx, gm *graphMeta, vp VertexPtr, hdr *vertexHdr, dir Direction, etype uint32, other VertexPtr) (HalfEdge, bool, error) {
	list, count, spilled := hdr.listRef(dir)
	if spilled {
		tree := edgeTreeFor(g, gm, dir)
		v, ok, err := tree.Get(tx, edgeTreeKey(vp.Addr, etype, other.Addr))
		if err != nil || !ok {
			return HalfEdge{}, false, err
		}
		return HalfEdge{TypeID: etype, Other: other, Data: valuePtr(v)}, true, nil
	}
	if count == 0 || list.IsNil() {
		return HalfEdge{}, false, nil
	}
	buf, err := tx.Read(list)
	if err != nil {
		return HalfEdge{}, false, err
	}
	data := buf.Data()
	for i := 0; i+halfEdgeBytes <= len(data); i += halfEdgeBytes {
		he := decodeHalfEdge(data[i:])
		if he.TypeID == etype && he.Other.Addr == other.Addr {
			return he, true, nil
		}
	}
	return HalfEdge{}, false, nil
}

// addHalfEdge appends ⟨etype, other, data⟩ to one direction of a vertex's
// edge list, growing the inline object geometrically and spilling to the
// global B-tree past the threshold.
func (g *Graph) addHalfEdge(tx *farm.Tx, gm *graphMeta, vp VertexPtr, dir Direction, etype uint32, other VertexPtr, dataPtr farm.Ptr) error {
	hdrBuf, hdr, err := g.readHeader(tx, vp)
	if err != nil {
		return err
	}
	list, count, spilled := hdr.listRef(dir)
	he := HalfEdge{TypeID: etype, Other: other, Data: dataPtr}

	writeHeader := func() error {
		w, err := tx.OpenForWrite(hdrBuf)
		if err != nil {
			return err
		}
		hdr.encode(w.Data())
		return nil
	}

	if spilled {
		tree := edgeTreeFor(g, gm, dir)
		if err := tree.Put(tx, edgeTreeKey(vp.Addr, etype, other.Addr), ptrValue(dataPtr)); err != nil {
			return err
		}
		hdr.setListRef(dir, farm.NilPtr, count+1, true)
		return writeHeader()
	}

	if list.IsNil() {
		// First edge: allocate the initial inline list near the vertex.
		buf, err := tx.Alloc(initialInlineEntries*halfEdgeBytes, vp.Addr)
		if err != nil {
			return err
		}
		if err := buf.Resize(halfEdgeBytes); err != nil {
			return err
		}
		encodeHalfEdge(buf.Data(), he)
		hdr.setListRef(dir, buf.Ptr(), 1, false)
		return writeHeader()
	}

	buf, err := tx.Read(list)
	if err != nil {
		return err
	}
	newLen := (count + 1) * halfEdgeBytes
	if int(count)+1 > g.store.cfg.EdgeSpillThreshold {
		// Migrate every half-edge (plus the new one) into the global tree.
		tree := edgeTreeFor(g, gm, dir)
		data := buf.Data()
		for i := 0; i+halfEdgeBytes <= len(data); i += halfEdgeBytes {
			old := decodeHalfEdge(data[i:])
			if err := tree.Put(tx, edgeTreeKey(vp.Addr, old.TypeID, old.Other.Addr), ptrValue(old.Data)); err != nil {
				return err
			}
		}
		if err := tree.Put(tx, edgeTreeKey(vp.Addr, etype, other.Addr), ptrValue(dataPtr)); err != nil {
			return err
		}
		if err := tx.Free(buf); err != nil {
			return err
		}
		hdr.setListRef(dir, farm.NilPtr, count+1, true)
		return writeHeader()
	}
	if newLen <= buf.Cap() {
		w, err := tx.OpenForWrite(buf)
		if err != nil {
			return err
		}
		if err := w.Resize(newLen); err != nil {
			return err
		}
		encodeHalfEdge(w.Data()[count*halfEdgeBytes:], he)
		hdr.setListRef(dir, w.Ptr(), count+1, false)
		return writeHeader()
	}
	// Geometric growth: double the entry capacity in a fresh object.
	newCap := 2 * count * halfEdgeBytes
	if newCap < newLen {
		newCap = newLen
	}
	nb, err := tx.Alloc(newCap, vp.Addr)
	if err != nil {
		return err
	}
	if err := nb.Resize(newLen); err != nil {
		return err
	}
	copy(nb.Data(), buf.Data())
	encodeHalfEdge(nb.Data()[count*halfEdgeBytes:], he)
	if err := tx.Free(buf); err != nil {
		return err
	}
	hdr.setListRef(dir, nb.Ptr(), count+1, false)
	return writeHeader()
}

// removeHalfEdge deletes ⟨etype, other⟩ from one direction, returning the
// edge's data pointer.
func (g *Graph) removeHalfEdge(tx *farm.Tx, gm *graphMeta, vp VertexPtr, dir Direction, etype uint32, other VertexPtr) error {
	_, err := g.removeHalfEdgeData(tx, gm, vp, dir, etype, other)
	return err
}

func (g *Graph) removeHalfEdgeData(tx *farm.Tx, gm *graphMeta, vp VertexPtr, dir Direction, etype uint32, other VertexPtr) (farm.Ptr, error) {
	hdrBuf, hdr, err := g.readHeader(tx, vp)
	if err != nil {
		return farm.NilPtr, err
	}
	list, count, spilled := hdr.listRef(dir)
	writeHeader := func() error {
		w, err := tx.OpenForWrite(hdrBuf)
		if err != nil {
			return err
		}
		hdr.encode(w.Data())
		return nil
	}
	if spilled {
		tree := edgeTreeFor(g, gm, dir)
		key := edgeTreeKey(vp.Addr, etype, other.Addr)
		v, ok, err := tree.Get(tx, key)
		if err != nil || !ok {
			return farm.NilPtr, err
		}
		if _, err := tree.Delete(tx, key); err != nil {
			return farm.NilPtr, err
		}
		hdr.setListRef(dir, farm.NilPtr, count-1, true)
		return valuePtr(v), writeHeader()
	}
	if count == 0 || list.IsNil() {
		return farm.NilPtr, nil
	}
	buf, err := tx.Read(list)
	if err != nil {
		return farm.NilPtr, err
	}
	data := buf.Data()
	for i := 0; i+halfEdgeBytes <= len(data); i += halfEdgeBytes {
		he := decodeHalfEdge(data[i:])
		if he.TypeID != etype || he.Other.Addr != other.Addr {
			continue
		}
		w, err := tx.OpenForWrite(buf)
		if err != nil {
			return farm.NilPtr, err
		}
		wd := w.Data()
		copy(wd[i:], wd[i+halfEdgeBytes:])
		if err := w.Resize(uint32(len(wd) - halfEdgeBytes)); err != nil {
			return farm.NilPtr, err
		}
		hdr.setListRef(dir, w.Ptr(), count-1, false)
		return he.Data, writeHeader()
	}
	return farm.NilPtr, nil
}

// dropEdgeLists frees a vertex's edge-list storage (inline objects or
// spilled tree entries) during vertex deletion.
func (g *Graph) dropEdgeLists(tx *farm.Tx, gm *graphMeta, vp VertexPtr, hdr *vertexHdr) error {
	for _, dir := range []Direction{DirOut, DirIn} {
		list, _, spilled := hdr.listRef(dir)
		if spilled {
			tree := edgeTreeFor(g, gm, dir)
			prefix := edgeTreePrefix(vp.Addr, 0, false)
			var keys [][]byte
			if err := tree.Scan(tx, prefix, prefixEnd(prefix), func(k, _ []byte) bool {
				keys = append(keys, append([]byte(nil), k...))
				return true
			}); err != nil {
				return err
			}
			for _, k := range keys {
				if _, err := tree.Delete(tx, k); err != nil {
					return err
				}
			}
			continue
		}
		if !list.IsNil() {
			buf, err := tx.Read(list)
			if err != nil {
				if err == farm.ErrNotFound {
					continue
				}
				return err
			}
			if err := tx.Free(buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// CreateEdge inserts an edge of the named type from src to dst inside tx.
// Given two vertices there can be only one edge of a given type between
// them (§3); val carries the edge attributes (bond.Null when the type has
// no schema).
func (g *Graph) CreateEdge(tx *farm.Tx, src VertexPtr, etypeName string, dst VertexPtr, val bond.Value) error {
	c := tx.Ctx()
	gm, err := g.requireActive(c)
	if err != nil {
		return err
	}
	et, err := g.edgeType(c, etypeName)
	if err != nil {
		return err
	}
	if et.Schema != nil && !val.IsNull() {
		if err := et.Schema.Validate(val); err != nil {
			return fmt.Errorf("%w: %v", ErrBadSchema, err)
		}
	} else if et.Schema == nil && !val.IsNull() {
		return fmt.Errorf("%w: edge type %q carries no data", ErrBadSchema, etypeName)
	}
	_, srcHdr, err := g.readHeader(tx, src)
	if err != nil {
		return fmt.Errorf("source vertex: %w", err)
	}
	if _, _, err := g.readHeader(tx, dst); err != nil {
		return fmt.Errorf("destination vertex: %w", err)
	}
	if _, exists, err := g.findHalfEdge(tx, gm, src, srcHdr, DirOut, et.ID, dst); err != nil {
		return err
	} else if exists {
		return fmt.Errorf("%w: edge %s", ErrExists, etypeName)
	}
	dataPtr := farm.NilPtr
	if !val.IsNull() {
		bytes := bond.Marshal(val)
		buf, err := tx.Alloc(uint32(len(bytes)), src.Addr)
		if err != nil {
			return err
		}
		copy(buf.Data(), bytes)
		dataPtr = buf.Ptr()
	}
	if err := g.addHalfEdge(tx, gm, src, DirOut, et.ID, dst, dataPtr); err != nil {
		return err
	}
	if err := g.addHalfEdge(tx, gm, dst, DirIn, et.ID, src, dataPtr); err != nil {
		return err
	}
	g.statsEdgeAdded(tx, src, etypeName)
	if l := g.store.updateLogger(); l != nil {
		key, err := g.edgeKeyOf(tx, src, etypeName, dst)
		if err != nil {
			return err
		}
		if err := l.LogEdgePut(tx, g.tenant, g.name, key, val); err != nil {
			return err
		}
	}
	return nil
}

// DeleteEdge removes the ⟨src, etype, dst⟩ edge, reporting whether it
// existed.
func (g *Graph) DeleteEdge(tx *farm.Tx, src VertexPtr, etypeName string, dst VertexPtr) (bool, error) {
	c := tx.Ctx()
	gm, err := g.meta(c) // deletes stay legal during graph deletion (§3.3)
	if err != nil {
		return false, err
	}
	et, err := g.edgeType(c, etypeName)
	if err != nil {
		return false, err
	}
	_, srcHdr, err := g.readHeader(tx, src)
	if err != nil {
		return false, err
	}
	if _, exists, err := g.findHalfEdge(tx, gm, src, srcHdr, DirOut, et.ID, dst); err != nil || !exists {
		return false, err
	}
	var key EdgeKey
	if l := g.store.updateLogger(); l != nil {
		if key, err = g.edgeKeyOf(tx, src, etypeName, dst); err != nil {
			return false, err
		}
		defer func() {
			_ = l.LogEdgeDelete(tx, g.tenant, g.name, key)
		}()
	}
	dataPtr, err := g.removeHalfEdgeData(tx, gm, src, DirOut, et.ID, dst)
	if err != nil {
		return false, err
	}
	if err := g.removeHalfEdge(tx, gm, dst, DirIn, et.ID, src); err != nil {
		return false, err
	}
	if !dataPtr.IsNil() {
		if err := g.freeEdgeData(tx, dataPtr, map[farm.Addr]bool{}); err != nil {
			return false, err
		}
	}
	g.statsEdgeRemoved(tx, src, etypeName)
	return true, nil
}

// GetEdge returns an edge's data (bond.Null for data-less edges).
func (g *Graph) GetEdge(tx *farm.Tx, src VertexPtr, etypeName string, dst VertexPtr) (bond.Value, bool, error) {
	c := tx.Ctx()
	gm, err := g.meta(c)
	if err != nil {
		return bond.Null, false, err
	}
	et, err := g.edgeType(c, etypeName)
	if err != nil {
		return bond.Null, false, err
	}
	_, hdr, err := g.readHeader(tx, src)
	if err != nil {
		return bond.Null, false, err
	}
	he, ok, err := g.findHalfEdge(tx, gm, src, hdr, DirOut, et.ID, dst)
	if err != nil || !ok {
		return bond.Null, false, err
	}
	if he.Data.IsNil() {
		return bond.Null, true, nil
	}
	buf, err := tx.Read(he.Data)
	if err != nil {
		return bond.Null, false, err
	}
	v, err := bond.Unmarshal(buf.Data())
	if err != nil {
		return bond.Null, false, err
	}
	return v, true, nil
}

// EnumerateEdges visits a vertex's half-edges in one direction, optionally
// filtered by edge type name ("" = all types). Once the vertex header is
// read, enumeration costs one extra read for inline lists — usually a
// local memory access thanks to locality (§3.2).
func (g *Graph) EnumerateEdges(tx *farm.Tx, vp VertexPtr, dir Direction, etypeName string, fn func(HalfEdge) bool) error {
	c := tx.Ctx()
	gm, err := g.meta(c)
	if err != nil {
		return err
	}
	var filter uint32
	if etypeName != "" {
		et, err := g.edgeType(c, etypeName)
		if err != nil {
			return err
		}
		filter = et.ID
	}
	s := readScratchPool.Get().(*readScratch)
	defer readScratchPool.Put(s)
	hb, err := tx.ReadSizedInto(vp.Addr, vertexHdrSize, s.hdr)
	if err != nil {
		if err == farm.ErrNotFound {
			return ErrNotFound
		}
		return err
	}
	s.hdr = hb
	hdr, err := decodeVertexHdrVal(hb)
	if err != nil {
		return err
	}
	return g.enumerateHalfEdgesWith(tx, gm, vp, &hdr, dir, filter, fn, s)
}

// EdgeCounts returns a vertex's out- and in-degree from its header alone.
func (g *Graph) EdgeCounts(tx *farm.Tx, vp VertexPtr) (out, in int, err error) {
	_, hdr, err := g.readHeader(tx, vp)
	if err != nil {
		return 0, 0, err
	}
	return int(hdr.outCount), int(hdr.inCount), nil
}

// EdgeTypeNameByID resolves an edge type id (as found in a HalfEdge).
func (g *Graph) EdgeTypeNameByID(tx *farm.Tx, id uint32) (string, error) {
	dir, err := g.store.typeDir(tx.Ctx(), g.tenant, g.name)
	if err != nil {
		return "", err
	}
	et, ok := dir.eByID[id]
	if !ok {
		return "", fmt.Errorf("%w: edge type id %d", ErrNoSuchType, id)
	}
	return et.Name, nil
}

// edgeKeyOf builds the durable identity of an edge from its endpoints.
func (g *Graph) edgeKeyOf(tx *farm.Tx, src VertexPtr, etypeName string, dst VertexPtr) (EdgeKey, error) {
	srcType, srcPK, err := g.VertexPK(tx, src)
	if err != nil {
		return EdgeKey{}, err
	}
	dstType, dstPK, err := g.VertexPK(tx, dst)
	if err != nil {
		return EdgeKey{}, err
	}
	return EdgeKey{
		SrcType: srcType, SrcPK: srcPK,
		EdgeTyp: etypeName,
		DstType: dstType, DstPK: dstPK,
	}, nil
}

// edgeIdentity builds an EdgeKey from a half-edge during vertex deletion.
func (g *Graph) edgeIdentity(tx *farm.Tx, dir *typeDirectory, vp VertexPtr, vt *vertexTypeMeta, pk bond.Value, he HalfEdge, direction Direction) (EdgeKey, error) {
	et, ok := dir.eByID[he.TypeID]
	if !ok {
		return EdgeKey{}, fmt.Errorf("%w: edge type id %d", ErrNoSuchType, he.TypeID)
	}
	otherType, otherPK, err := g.VertexPK(tx, he.Other)
	if err != nil {
		return EdgeKey{}, err
	}
	if direction == DirOut {
		return EdgeKey{SrcType: vt.Name, SrcPK: pk, EdgeTyp: et.Name, DstType: otherType, DstPK: otherPK}, nil
	}
	return EdgeKey{SrcType: otherType, SrcPK: otherPK, EdgeTyp: et.Name, DstType: vt.Name, DstPK: pk}, nil
}
