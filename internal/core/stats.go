package core

import (
	"a1/internal/bond"
	"a1/internal/fabric"
	"a1/internal/farm"
	"a1/internal/stats"
)

// Statistics maintenance: every committed data-plane mutation feeds the
// per-machine stats tracker, attributed to the machine hosting the vertex
// header (placement, not the coordinator), so per-machine numbers mirror
// where the data actually lives. Deltas are registered with tx.OnCommitted
// — aborted or retried transactions never count.

// statsKey identifies a graph inside the tracker.
func statsKey(tenant, graph string) string { return tenant + "/" + graph }

// StatsTracker exposes the live statistics subsystem.
func (s *Store) StatsTracker() *stats.Tracker { return s.stats }

// StatsSummary returns a graph's cluster-wide statistics as seen from the
// calling machine: per-type vertex counts, per-indexed-field distinct-value
// and heavy-hitter estimates, and per-edge-label mean out-degrees. The
// coordinator caches the aggregated view for the proxy TTL, so the summary
// may be one TTL stale — the planner's staleness model.
func (s *Store) StatsSummary(c *fabric.Ctx, tenant, graph string) *stats.GraphSummary {
	return s.stats.Summary(int(c.M), c.Now(), statsKey(tenant, graph))
}

// statsLocal returns the stats sink for the machine owning addr; nil when
// the owner cannot be resolved (stats simply miss the delta).
func (s *Store) statsLocal(c *fabric.Ctx, addr farm.Addr) *stats.Local {
	m, err := s.farm.PrimaryOf(c, addr)
	if err != nil {
		return nil
	}
	return s.stats.Local(int(m))
}

// statFieldVal is one secondary-indexed field value captured for a stats
// delta.
type statFieldVal struct {
	field string
	val   bond.Value
}

// indexedFieldVals extracts the non-null secondary-indexed field values of
// a vertex value — exactly the entries the secondary indexes store.
func indexedFieldVals(vt *vertexTypeMeta, val bond.Value) []statFieldVal {
	var out []statFieldVal
	for _, si := range vt.Secondary {
		attr, ok := val.Field(si.FieldID)
		if !ok || attr.IsNull() {
			continue
		}
		f, ok := vt.Schema.FieldByID(si.FieldID)
		if !ok {
			continue
		}
		out = append(out, statFieldVal{field: f.Name, val: attr})
	}
	return out
}

// statsVertexAdded registers the commit-time delta for a vertex insert.
func (g *Graph) statsVertexAdded(tx *farm.Tx, target fabric.MachineID, vt *vertexTypeMeta, val bond.Value) {
	l := g.store.stats.Local(int(target))
	key := statsKey(g.tenant, g.name)
	typeName := vt.Name
	fvals := indexedFieldVals(vt, val)
	tx.OnCommitted(func() {
		l.VertexAdded(key, typeName)
		for _, fv := range fvals {
			l.FieldValueAdded(key, typeName, fv.field, fv.val)
		}
	})
}

// statsVertexRemoved registers the commit-time delta for a vertex delete.
func (g *Graph) statsVertexRemoved(tx *farm.Tx, vp VertexPtr, vt *vertexTypeMeta, val bond.Value) {
	l := g.store.statsLocal(tx.Ctx(), vp.Addr)
	if l == nil {
		return
	}
	key := statsKey(g.tenant, g.name)
	typeName := vt.Name
	fvals := indexedFieldVals(vt, val)
	tx.OnCommitted(func() {
		l.VertexRemoved(key, typeName)
		for _, fv := range fvals {
			l.FieldValueRemoved(key, typeName, fv.field, fv.val)
		}
	})
}

// statsVertexUpdated registers deltas for the indexed fields an update
// changed.
func (g *Graph) statsVertexUpdated(tx *farm.Tx, vp VertexPtr, vt *vertexTypeMeta, oldVal, newVal bond.Value) {
	oldF := indexedFieldVals(vt, oldVal)
	newF := indexedFieldVals(vt, newVal)
	var removed, added []statFieldVal
	oldBy := make(map[string]bond.Value, len(oldF))
	for _, fv := range oldF {
		oldBy[fv.field] = fv.val
	}
	newBy := make(map[string]bond.Value, len(newF))
	for _, fv := range newF {
		newBy[fv.field] = fv.val
	}
	for _, fv := range oldF {
		if nv, ok := newBy[fv.field]; !ok || !nv.Equal(fv.val) {
			removed = append(removed, fv)
		}
	}
	for _, fv := range newF {
		if ov, ok := oldBy[fv.field]; !ok || !ov.Equal(fv.val) {
			added = append(added, fv)
		}
	}
	if len(removed) == 0 && len(added) == 0 {
		return
	}
	l := g.store.statsLocal(tx.Ctx(), vp.Addr)
	if l == nil {
		return
	}
	key := statsKey(g.tenant, g.name)
	typeName := vt.Name
	tx.OnCommitted(func() {
		for _, fv := range removed {
			l.FieldValueRemoved(key, typeName, fv.field, fv.val)
		}
		for _, fv := range added {
			l.FieldValueAdded(key, typeName, fv.field, fv.val)
		}
	})
}

// statsEdgeAdded registers the commit-time delta for an edge insert,
// attributed to the source vertex's machine.
func (g *Graph) statsEdgeAdded(tx *farm.Tx, src VertexPtr, label string) {
	l := g.store.statsLocal(tx.Ctx(), src.Addr)
	if l == nil {
		return
	}
	key := statsKey(g.tenant, g.name)
	srcAddr := uint64(src.Addr)
	tx.OnCommitted(func() { l.EdgeAdded(key, label, srcAddr) })
}

// statsEdgeRemoved registers the commit-time delta for an edge delete.
func (g *Graph) statsEdgeRemoved(tx *farm.Tx, src VertexPtr, label string) {
	l := g.store.statsLocal(tx.Ctx(), src.Addr)
	if l == nil {
		return
	}
	key := statsKey(g.tenant, g.name)
	srcAddr := uint64(src.Addr)
	tx.OnCommitted(func() { l.EdgeRemoved(key, label, srcAddr) })
}

// Analyze rebuilds a graph's statistics exactly from a full scan of every
// vertex (counts, indexed field values, out-edges) and returns the fresh
// cluster-wide summary. It repairs whatever drift the incremental sketches
// accumulated; queries running during the rebuild may briefly see partial
// numbers, which only perturbs plan choice, never results.
func (g *Graph) Analyze(c *fabric.Ctx) (*stats.GraphSummary, error) {
	s := g.store
	key := statsKey(g.tenant, g.name)
	s.stats.ResetGraph(key)
	dir, err := s.typeDir(c, g.tenant, g.name)
	if err != nil {
		return nil, err
	}
	names, err := g.VertexTypeNames(c)
	if err != nil {
		return nil, err
	}
	gm, err := g.meta(c)
	if err != nil {
		return nil, err
	}
	tx := s.farm.CreateReadTransaction(c)
	for _, typeName := range names {
		vt, err := g.vertexType(c, typeName)
		if err != nil {
			return nil, err
		}
		var ptrs []VertexPtr
		if err := g.ScanVerticesByType(tx, typeName, func(_ bond.Value, vp VertexPtr) bool {
			ptrs = append(ptrs, vp)
			return true
		}); err != nil {
			return nil, err
		}
		for _, vp := range ptrs {
			l := s.statsLocal(c, vp.Addr)
			if l == nil {
				continue
			}
			v, err := g.ReadVertex(tx, vp)
			if err != nil {
				if err == ErrNotFound {
					continue
				}
				return nil, err
			}
			l.VertexAdded(key, typeName)
			for _, fv := range indexedFieldVals(vt, v.Data) {
				l.FieldValueAdded(key, typeName, fv.field, fv.val)
			}
			_, hdr, err := g.readHeader(tx, vp)
			if err != nil {
				return nil, err
			}
			srcAddr := uint64(vp.Addr)
			if err := g.enumerateHalfEdges(tx, gm, vp, hdr, DirOut, 0, func(he HalfEdge) bool {
				if et, ok := dir.eByID[he.TypeID]; ok {
					l.EdgeAdded(key, et.Name, srcAddr)
				}
				return true
			}); err != nil {
				return nil, err
			}
		}
	}
	s.stats.Invalidate(key)
	return s.StatsSummary(c, g.tenant, g.name), nil
}
