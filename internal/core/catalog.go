package core

import (
	"errors"
	"sync"
	"time"

	"a1/internal/fabric"
	"a1/internal/farm"
)

// The catalog (paper §3.1) roots all A1 data structures: a key-value store
// mapping object names (tenants, graphs, types) to the metadata needed to
// access them — for a B-tree, the FaRM address of its descriptor. The
// catalog itself lives in FaRM, so materializing a handle costs remote
// reads; per-machine proxy caches with a TTL absorb that cost for the data
// plane. When a proxy's TTL expires the cache re-reads the entry: unchanged
// bytes extend the TTL, changed bytes refresh the proxy.

// Catalog key prefixes. Keys are "<prefix>/<tenant>[/graph[/name]]".
const (
	catTenant     = "t/"
	catGraph      = "g/"
	catVertexType = "vt/"
	catEdgeType   = "et/"
)

// proxyEntry is one cached catalog row plus its decoded proxy object.
type proxyEntry struct {
	raw     []byte
	decoded interface{}
	expires time.Duration
}

type proxyCache struct {
	mu      sync.Mutex
	entries map[string]*proxyEntry
}

func newProxyCache() *proxyCache {
	return &proxyCache{entries: make(map[string]*proxyEntry)}
}

// catPut writes a catalog entry inside tx.
func (s *Store) catPut(tx *farm.Tx, key string, val []byte) error {
	return s.catalog().Put(tx, []byte(key), val)
}

// catGet reads a catalog entry inside tx (no cache).
func (s *Store) catGet(tx *farm.Tx, key string) ([]byte, bool, error) {
	return s.catalog().Get(tx, []byte(key))
}

// catDelete removes a catalog entry inside tx.
func (s *Store) catDelete(tx *farm.Tx, key string) error {
	_, err := s.catalog().Delete(tx, []byte(key))
	s.invalidateProxy(key)
	return err
}

// catScanPrefix visits catalog entries under a key prefix.
func (s *Store) catScanPrefix(tx *farm.Tx, prefix string, fn func(key string, val []byte) bool) error {
	return s.catalog().Scan(tx, []byte(prefix), prefixEnd([]byte(prefix)), func(k, v []byte) bool {
		return fn(string(k), v)
	})
}

// prefixEnd returns the smallest key greater than every key with the given
// prefix (nil for an all-0xFF prefix).
func prefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

// proxyGet returns the decoded proxy for a catalog entry, reading through
// the per-machine cache. decode turns raw entry bytes into the cached
// proxy object.
func (s *Store) proxyGet(c *fabric.Ctx, key string, decode func([]byte) (interface{}, error)) (interface{}, error) {
	pc := s.proxies[c.M]
	now := c.Now()
	pc.mu.Lock()
	e, ok := pc.entries[key]
	pc.mu.Unlock()
	if ok && now < e.expires {
		return e.decoded, nil
	}
	// Miss or expired: read the authoritative entry.
	tx := s.farm.CreateReadTransaction(c)
	raw, found, err := s.catGet(tx, key)
	if err != nil {
		return nil, err
	}
	if !found {
		s.invalidateProxy(key)
		return nil, ErrNotFound
	}
	if ok && string(raw) == string(e.raw) {
		// Unchanged: extend the TTL and keep using the proxy (§3.1).
		pc.mu.Lock()
		e.expires = now + s.cfg.ProxyTTL
		pc.mu.Unlock()
		return e.decoded, nil
	}
	decoded, err := decode(raw)
	if err != nil {
		return nil, err
	}
	pc.mu.Lock()
	pc.entries[key] = &proxyEntry{raw: raw, decoded: decoded, expires: now + s.cfg.ProxyTTL}
	pc.mu.Unlock()
	return decoded, nil
}

// invalidateProxy drops a key from every machine's proxy cache. Control
// plane operations call it after catalog mutations so the machine that
// performed the change observes it immediately; other machines converge
// within the TTL, exactly as in the paper.
func (s *Store) invalidateProxy(key string) {
	for _, pc := range s.proxies {
		pc.mu.Lock()
		delete(pc.entries, key)
		pc.mu.Unlock()
	}
}

// ErrCatalogCorrupt reports undecodable catalog bytes.
var ErrCatalogCorrupt = errors.New("a1: corrupt catalog entry")
