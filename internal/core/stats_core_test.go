package core

import (
	"testing"

	"a1/internal/bond"
	"a1/internal/fabric"
	"a1/internal/farm"
)

// freshSummary reads the stats summary bypassing the coordinator TTL cache
// (tests mutate and read back faster than the proxy TTL).
func freshSummary(s *Store, c *fabric.Ctx, g *Graph) map[string]int64 {
	s.StatsTracker().Invalidate(statsKey(g.tenant, g.name))
	sum := s.StatsSummary(c, g.tenant, g.name)
	out := map[string]int64{}
	for name, ts := range sum.Types {
		out[name] = ts.Count
	}
	return out
}

func TestStatsMaintainedOnWritePath(t *testing.T) {
	s, g, c := testGraph(t, 5)
	var actors []VertexPtr
	for i := 0; i < 10; i++ {
		origin := "usa"
		if i >= 7 {
			origin = "uk"
		}
		actors = append(actors, mustCreateVertex(t, g, c, "actor", actorVal(actorName(i), origin)))
	}
	film := mustCreateVertex(t, g, c, "film", filmVal("jaws", "thriller"))
	for i := 0; i < 6; i++ {
		mustCreateEdge(t, g, c, film, "film.actor", actors[i], bond.Null)
	}

	counts := freshSummary(s, c, g)
	if counts["actor"] != 10 || counts["film"] != 1 {
		t.Fatalf("type counts = %v, want actor=10 film=1", counts)
	}
	s.StatsTracker().Invalidate(statsKey(g.tenant, g.name))
	sum := s.StatsSummary(c, g.tenant, g.name)
	fs, ok := sum.FieldStats("actor", "origin")
	if !ok {
		t.Fatal("no stats for indexed field actor.origin")
	}
	if fs.Count != 10 {
		t.Fatalf("origin value count = %d, want 10", fs.Count)
	}
	if est := fs.EqEstimate(bond.String("usa")); est < 5 || est > 9 {
		t.Fatalf("EqEstimate(usa) = %.1f, want ≈7", est)
	}
	if deg, ok := sum.MeanOutDegree("film.actor"); !ok || deg < 5 || deg > 7 {
		t.Fatalf("MeanOutDegree(film.actor) = %.1f/%v, want ≈6", deg, ok)
	}

	// Update: origin change moves the value between sketch buckets.
	err := farm.RunTransaction(c, s.farm, func(tx *farm.Tx) error {
		return g.UpdateVertex(tx, actors[0], actorVal(actorName(0), "uk"))
	})
	if err != nil {
		t.Fatal(err)
	}
	// Delete a vertex: count and its edges drop.
	err = farm.RunTransaction(c, s.farm, func(tx *farm.Tx) error {
		return g.DeleteVertex(tx, actors[1])
	})
	if err != nil {
		t.Fatal(err)
	}
	s.StatsTracker().Invalidate(statsKey(g.tenant, g.name))
	sum = s.StatsSummary(c, g.tenant, g.name)
	if n, _ := sum.TypeCount("actor"); n != 9 {
		t.Fatalf("actor count after delete = %d, want 9", n)
	}
	fs, _ = sum.FieldStats("actor", "origin")
	if est := fs.EqEstimate(bond.String("uk")); est < 2 || est > 6 {
		t.Fatalf("EqEstimate(uk) after update = %.1f, want ≈4", est)
	}
	if es, ok := sum.Edges["film.actor"]; !ok || es.Count != 5 {
		t.Fatalf("film.actor edge count after delete = %+v, want 5", es)
	}
}

func TestStatsAbortedTxDoesNotCount(t *testing.T) {
	s, g, c := testGraph(t, 5)
	tx := s.farm.CreateTransaction(c)
	if _, err := g.CreateVertex(tx, "actor", actorVal("aborted", "usa")); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	counts := freshSummary(s, c, g)
	if counts["actor"] != 0 {
		t.Fatalf("aborted insert counted: %v", counts)
	}
}

func TestAnalyzeRebuilds(t *testing.T) {
	s, g, c := testGraph(t, 5)
	var ptrs []VertexPtr
	for i := 0; i < 8; i++ {
		ptrs = append(ptrs, mustCreateVertex(t, g, c, "actor", actorVal(actorName(i), "usa")))
	}
	mustCreateEdge(t, g, c, ptrs[0], "film.actor", ptrs[1], bond.Null)
	// Corrupt the live numbers, then Analyze must restore exact counts.
	s.StatsTracker().ResetGraph(statsKey(g.tenant, g.name))
	sum, err := g.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := sum.TypeCount("actor"); n != 8 {
		t.Fatalf("Analyze actor count = %d, want 8", n)
	}
	fs, ok := sum.FieldStats("actor", "origin")
	if !ok || fs.Count != 8 {
		t.Fatalf("Analyze origin count = %+v, want 8", fs)
	}
	if es, ok := sum.Edges["film.actor"]; !ok || es.Count != 1 {
		t.Fatalf("Analyze edge count = %+v, want 1", es)
	}
}

func actorName(i int) string { return "actor" + string(rune('a'+i)) }
