// Package core implements the A1 graph store — the paper's primary
// contribution (§3): the property-graph data model with enforced Bond
// schemas, the catalog with TTL-cached proxies, vertices stored as a
// header + data object pair, half-edge lists that spill from inline arrays
// into a global B-tree, primary and secondary indexes, and the CRUD data
// plane everything above (query engine, workflows, disaster recovery) is
// built on.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"a1/internal/bond"
	"a1/internal/fabric"
	"a1/internal/farm"
	"a1/internal/stats"
)

// Errors surfaced by the graph layer.
var (
	ErrExists        = errors.New("a1: already exists")
	ErrNotFound      = errors.New("a1: not found")
	ErrBadSchema     = errors.New("a1: schema violation")
	ErrNoSuchType    = errors.New("a1: no such type")
	ErrGraphDeleting = errors.New("a1: graph is being deleted")
	ErrImmutablePK   = errors.New("a1: primary key is immutable")
)

// Config parameterizes the graph store.
type Config struct {
	// ProxyTTL is how long catalog proxies are used before re-validation
	// (paper §3.1).
	ProxyTTL time.Duration
	// EdgeSpillThreshold is the half-edge count above which a vertex's edge
	// list moves from an inline object to the global edge B-tree (the
	// paper's ~1000; §3.2).
	EdgeSpillThreshold int
	// RandomPlacement spreads new vertices across random machines (the
	// paper's production strategy, §3.2). When false, vertices are placed
	// near the coordinator — the locality ablation.
	RandomPlacement bool
	// Seed drives placement randomness deterministically.
	Seed int64
}

// DefaultConfig matches the paper's deployment choices.
func DefaultConfig() Config {
	return Config{
		ProxyTTL:           5 * time.Second,
		EdgeSpillThreshold: 1000,
		RandomPlacement:    true,
		Seed:               1,
	}
}

// UpdateLogger receives data-plane mutations inside their transaction so
// the disaster-recovery layer can append replication-log entries
// transactionally (§4). Implemented by internal/dr.
type UpdateLogger interface {
	LogVertexPut(tx *farm.Tx, tenant, graph, vtype string, pk bond.Value, data bond.Value) error
	LogVertexDelete(tx *farm.Tx, tenant, graph, vtype string, pk bond.Value) error
	LogEdgePut(tx *farm.Tx, tenant, graph string, key EdgeKey, data bond.Value) error
	LogEdgeDelete(tx *farm.Tx, tenant, graph string, key EdgeKey) error
}

// EdgeKey is the durable identity of an edge: endpoint identities rather
// than FaRM addresses, which do not survive recovery.
type EdgeKey struct {
	SrcType string
	SrcPK   bond.Value
	EdgeTyp string
	DstType string
	DstPK   bond.Value
}

// Store is the A1 graph store over a FaRM cluster.
type Store struct {
	farm *farm.Farm
	cfg  Config

	catalogDesc farm.Ptr
	proxies     []*proxyCache   // per machine; dropped on process restart
	typeDirs    []*typeDirCache // per machine type-id directories
	stats       *stats.Tracker  // per machine live data-distribution stats

	randMu sync.Mutex
	rand   *rand.Rand

	logMu  sync.RWMutex
	logger UpdateLogger
}

// Open bootstraps (or reopens) the graph store on a FaRM cluster: the
// catalog B-tree is created on first open and found through its descriptor
// thereafter.
func Open(c *fabric.Ctx, f *farm.Farm, cfg Config) (*Store, error) {
	if cfg.ProxyTTL == 0 {
		cfg.ProxyTTL = DefaultConfig().ProxyTTL
	}
	if cfg.EdgeSpillThreshold == 0 {
		cfg.EdgeSpillThreshold = DefaultConfig().EdgeSpillThreshold
	}
	s := &Store{
		farm: f,
		cfg:  cfg,
		rand: rand.New(rand.NewSource(cfg.Seed)),
	}
	s.proxies = make([]*proxyCache, f.Fabric().Machines())
	s.typeDirs = make([]*typeDirCache, f.Fabric().Machines())
	s.stats = stats.NewTracker(f.Fabric().Machines(), cfg.ProxyTTL)
	for i := range s.proxies {
		s.proxies[i] = newProxyCache()
		s.typeDirs[i] = &typeDirCache{dirs: make(map[string]*typeDirectory)}
	}
	err := farm.RunTransaction(c, f, func(tx *farm.Tx) error {
		bt, err := farm.CreateBTree(tx, farm.NilAddr)
		if err != nil {
			return err
		}
		s.catalogDesc = bt.Desc()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("a1: bootstrapping catalog: %w", err)
	}
	return s, nil
}

// Farm returns the underlying FaRM cluster.
func (s *Store) Farm() *farm.Farm { return s.farm }

// Config returns the store configuration.
func (s *Store) Config() Config { return s.cfg }

// SetLogger installs the disaster-recovery update logger. Pass nil to
// disable logging.
func (s *Store) SetLogger(l UpdateLogger) {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	s.logger = l
}

func (s *Store) updateLogger() UpdateLogger {
	s.logMu.RLock()
	defer s.logMu.RUnlock()
	return s.logger
}

// placementTarget picks the machine for a new vertex: random across the
// cluster in the paper's configuration.
func (s *Store) placementTarget(c *fabric.Ctx) fabric.MachineID {
	if !s.cfg.RandomPlacement {
		return c.M
	}
	n := s.farm.Fabric().Machines()
	if s.farm.Fabric().Config().Mode == fabric.Sim {
		return fabric.MachineID(s.farm.Fabric().Env().Rand().Intn(n))
	}
	s.randMu.Lock()
	defer s.randMu.Unlock()
	return fabric.MachineID(s.rand.Intn(n))
}

// catalog returns a handle on the catalog B-tree.
func (s *Store) catalog() *farm.BTree {
	return farm.OpenBTree(s.farm, s.catalogDesc)
}
