package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"a1/internal/bond"
	"a1/internal/fabric"
	"a1/internal/farm"
)

var (
	actorSchema = bond.MustSchema("Actor",
		bond.FReq(0, "name", bond.TString),
		bond.F(1, "origin", bond.TString),
		bond.F(2, "birth_date", bond.TDate),
	)
	filmSchema = bond.MustSchema("Film",
		bond.FReq(0, "name", bond.TString),
		bond.F(1, "genre", bond.TString),
		bond.F(2, "release_date", bond.TDate),
	)
	actedSchema = bond.MustSchema("Acted",
		bond.F(0, "character", bond.TString),
	)
)

// testGraph builds a store with the paper's film/actor example schema.
func testGraph(t *testing.T, machines int) (*Store, *Graph, *fabric.Ctx) {
	t.Helper()
	fab := fabric.New(fabric.DefaultConfig(machines, fabric.Direct), nil)
	f := farm.Open(fab, farm.Config{RegionSize: 8 << 20, Replicas: 3})
	c := fab.NewCtx(0, nil)
	cfg := DefaultConfig()
	cfg.EdgeSpillThreshold = 16 // exercise spilling without huge tests
	s, err := Open(c, f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTenant(c, "bing"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateGraph(c, "bing", "films"); err != nil {
		t.Fatal(err)
	}
	g, err := s.OpenGraph(c, "bing", "films")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CreateVertexType(c, "actor", actorSchema, "name", "origin"); err != nil {
		t.Fatal(err)
	}
	if err := g.CreateVertexType(c, "film", filmSchema, "name"); err != nil {
		t.Fatal(err)
	}
	if err := g.CreateEdgeType(c, "acted", actedSchema); err != nil {
		t.Fatal(err)
	}
	if err := g.CreateEdgeType(c, "film.actor", nil); err != nil {
		t.Fatal(err)
	}
	return s, g, c
}

func actorVal(name, origin string) bond.Value {
	return bond.Struct(
		bond.FV(0, bond.String(name)),
		bond.FV(1, bond.String(origin)),
		bond.FV(2, bond.Date(10000)),
	)
}

func filmVal(name, genre string) bond.Value {
	return bond.Struct(
		bond.FV(0, bond.String(name)),
		bond.FV(1, bond.String(genre)),
	)
}

func mustCreateVertex(t *testing.T, g *Graph, c *fabric.Ctx, typ string, val bond.Value) VertexPtr {
	t.Helper()
	var vp VertexPtr
	err := farm.RunTransaction(c, g.store.farm, func(tx *farm.Tx) error {
		var err error
		vp, err = g.CreateVertex(tx, typ, val)
		return err
	})
	if err != nil {
		t.Fatalf("CreateVertex(%s): %v", typ, err)
	}
	return vp
}

func mustCreateEdge(t *testing.T, g *Graph, c *fabric.Ctx, src VertexPtr, etype string, dst VertexPtr, val bond.Value) {
	t.Helper()
	err := farm.RunTransaction(c, g.store.farm, func(tx *farm.Tx) error {
		return g.CreateEdge(tx, src, etype, dst, val)
	})
	if err != nil {
		t.Fatalf("CreateEdge(%s): %v", etype, err)
	}
}

func TestControlPlaneLifecycle(t *testing.T) {
	s, g, c := testGraph(t, 5)
	if err := s.CreateTenant(c, "bing"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate tenant err = %v", err)
	}
	if err := s.CreateGraph(c, "bing", "films"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate graph err = %v", err)
	}
	if err := s.CreateGraph(c, "nobody", "g"); !errors.Is(err, ErrNotFound) {
		t.Errorf("graph under missing tenant err = %v", err)
	}
	if err := g.CreateVertexType(c, "actor", actorSchema, "name"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate vertex type err = %v", err)
	}
	if err := g.CreateVertexType(c, "bad", actorSchema, "nope"); !errors.Is(err, ErrBadSchema) {
		t.Errorf("bad pk field err = %v", err)
	}
	names, err := g.VertexTypeNames(c)
	if err != nil || len(names) != 2 {
		t.Errorf("vertex types = %v, %v", names, err)
	}
	enames, err := g.EdgeTypeNames(c)
	if err != nil || len(enames) != 2 {
		t.Errorf("edge types = %v, %v", enames, err)
	}
	graphs, err := s.GraphNames(c, "bing")
	if err != nil || len(graphs) != 1 || graphs[0] != "films" {
		t.Errorf("graphs = %v, %v", graphs, err)
	}
	if _, err := s.OpenGraph(c, "bing", "missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("open missing graph err = %v", err)
	}
}

func TestVertexCRUD(t *testing.T) {
	_, g, c := testGraph(t, 5)
	vp := mustCreateVertex(t, g, c, "actor", actorVal("tom.hanks", "usa"))

	// Lookup through the primary index.
	rtx := g.store.farm.CreateReadTransaction(c)
	got, ok, err := g.LookupVertex(rtx, "actor", bond.String("tom.hanks"))
	if err != nil || !ok || got.Addr != vp.Addr {
		t.Fatalf("LookupVertex = %v, %v, %v", got, ok, err)
	}
	v, err := g.ReadVertex(rtx, vp)
	if err != nil {
		t.Fatal(err)
	}
	if v.TypeName != "actor" {
		t.Errorf("type = %q", v.TypeName)
	}
	if origin, _ := v.Data.Field(1); origin.AsString() != "usa" {
		t.Errorf("origin = %v", origin)
	}

	// Duplicate primary key rejected.
	err = farm.RunTransaction(c, g.store.farm, func(tx *farm.Tx) error {
		_, err := g.CreateVertex(tx, "actor", actorVal("tom.hanks", "other"))
		return err
	})
	if !errors.Is(err, ErrExists) {
		t.Errorf("duplicate pk err = %v", err)
	}

	// Schema violations rejected.
	err = farm.RunTransaction(c, g.store.farm, func(tx *farm.Tx) error {
		_, err := g.CreateVertex(tx, "actor", bond.Struct(bond.FV(1, bond.String("no pk"))))
		return err
	})
	if !errors.Is(err, ErrBadSchema) {
		t.Errorf("missing pk err = %v", err)
	}

	// Update changes data and secondary index.
	err = farm.RunTransaction(c, g.store.farm, func(tx *farm.Tx) error {
		return g.UpdateVertex(tx, vp, actorVal("tom.hanks", "california"))
	})
	if err != nil {
		t.Fatal(err)
	}
	rtx = g.store.farm.CreateReadTransaction(c)
	v, err = g.ReadVertex(rtx, vp)
	if err != nil {
		t.Fatal(err)
	}
	if origin, _ := v.Data.Field(1); origin.AsString() != "california" {
		t.Errorf("after update origin = %v", origin)
	}
	var hits []VertexPtr
	if err := g.IndexScan(rtx, "actor", "origin", bond.String("california"), func(vp VertexPtr) bool {
		hits = append(hits, vp)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Errorf("secondary index hits = %d, want 1", len(hits))
	}
	if err := g.IndexScan(rtx, "actor", "origin", bond.String("usa"), func(vp VertexPtr) bool {
		t.Error("stale secondary index entry")
		return true
	}); err != nil {
		t.Fatal(err)
	}

	// Primary key immutable.
	err = farm.RunTransaction(c, g.store.farm, func(tx *farm.Tx) error {
		return g.UpdateVertex(tx, vp, actorVal("renamed", "usa"))
	})
	if !errors.Is(err, ErrImmutablePK) {
		t.Errorf("pk change err = %v", err)
	}

	// Delete removes vertex and index entries.
	err = farm.RunTransaction(c, g.store.farm, func(tx *farm.Tx) error {
		return g.DeleteVertex(tx, vp)
	})
	if err != nil {
		t.Fatal(err)
	}
	rtx = g.store.farm.CreateReadTransaction(c)
	if _, ok, _ := g.LookupVertex(rtx, "actor", bond.String("tom.hanks")); ok {
		t.Error("deleted vertex still in primary index")
	}
	if _, err := g.ReadVertex(rtx, vp); !errors.Is(err, ErrNotFound) {
		t.Errorf("read deleted vertex err = %v", err)
	}
}

func TestEdgeCRUDAndBidirectionalLists(t *testing.T) {
	_, g, c := testGraph(t, 5)
	hanks := mustCreateVertex(t, g, c, "actor", actorVal("tom.hanks", "usa"))
	film := mustCreateVertex(t, g, c, "film", filmVal("big", "comedy"))
	edgeData := bond.Struct(bond.FV(0, bond.String("Josh")))
	mustCreateEdge(t, g, c, film, "acted", hanks, edgeData)

	rtx := g.store.farm.CreateReadTransaction(c)
	// Forward half-edge on film.
	var outs []HalfEdge
	if err := g.EnumerateEdges(rtx, film, DirOut, "acted", func(he HalfEdge) bool {
		outs = append(outs, he)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Other.Addr != hanks.Addr {
		t.Fatalf("out edges = %+v", outs)
	}
	// Backward half-edge on actor.
	var ins []HalfEdge
	if err := g.EnumerateEdges(rtx, hanks, DirIn, "acted", func(he HalfEdge) bool {
		ins = append(ins, he)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(ins) != 1 || ins[0].Other.Addr != film.Addr {
		t.Fatalf("in edges = %+v", ins)
	}
	// Edge data readable.
	val, ok, err := g.GetEdge(rtx, film, "acted", hanks)
	if err != nil || !ok {
		t.Fatalf("GetEdge: %v %v", ok, err)
	}
	if ch, _ := val.Field(0); ch.AsString() != "Josh" {
		t.Errorf("character = %v", ch)
	}
	// Uniqueness per ⟨src, type, dst⟩.
	err = farm.RunTransaction(c, g.store.farm, func(tx *farm.Tx) error {
		return g.CreateEdge(tx, film, "acted", hanks, edgeData)
	})
	if !errors.Is(err, ErrExists) {
		t.Errorf("duplicate edge err = %v", err)
	}
	// Delete.
	err = farm.RunTransaction(c, g.store.farm, func(tx *farm.Tx) error {
		found, err := g.DeleteEdge(tx, film, "acted", hanks)
		if err == nil && !found {
			return errors.New("edge not found")
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	rtx = g.store.farm.CreateReadTransaction(c)
	if _, ok, _ := g.GetEdge(rtx, film, "acted", hanks); ok {
		t.Error("deleted edge still present")
	}
	out, in, err := g.EdgeCounts(rtx, film)
	if err != nil || out != 0 {
		t.Errorf("film out count = %d, %v", out, err)
	}
	if _, in2, _ := g.EdgeCounts(rtx, hanks); in2 != 0 {
		t.Errorf("actor in count = %d", in2)
	}
	_ = in
}

func TestVertexDeleteRemovesRemoteHalfEdges(t *testing.T) {
	// The paper's motivating constraint: deleting v2 must erase the edge
	// entry on v1 — no dangling edges, unlike TAO.
	_, g, c := testGraph(t, 5)
	v1 := mustCreateVertex(t, g, c, "film", filmVal("jaws", "thriller"))
	v2 := mustCreateVertex(t, g, c, "actor", actorVal("roy.scheider", "usa"))
	mustCreateEdge(t, g, c, v1, "film.actor", v2, bond.Null)

	err := farm.RunTransaction(c, g.store.farm, func(tx *farm.Tx) error {
		return g.DeleteVertex(tx, v2)
	})
	if err != nil {
		t.Fatal(err)
	}
	rtx := g.store.farm.CreateReadTransaction(c)
	count := 0
	if err := g.EnumerateEdges(rtx, v1, DirOut, "", func(HalfEdge) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("dangling half-edges on v1: %d", count)
	}
	out, _, err := g.EdgeCounts(rtx, v1)
	if err != nil || out != 0 {
		t.Errorf("v1 out count = %d, %v", out, err)
	}
}

func TestEdgeListGrowthAndSpill(t *testing.T) {
	_, g, c := testGraph(t, 5)
	hub := mustCreateVertex(t, g, c, "film", filmVal("hub", "epic"))
	const n = 40 // spill threshold is 16 in testGraph
	actors := make([]VertexPtr, n)
	for i := range actors {
		actors[i] = mustCreateVertex(t, g, c, "actor", actorVal(fmt.Sprintf("actor-%03d", i), "usa"))
		mustCreateEdge(t, g, c, hub, "film.actor", actors[i], bond.Null)
	}
	rtx := g.store.farm.CreateReadTransaction(c)
	out, _, err := g.EdgeCounts(rtx, hub)
	if err != nil || out != n {
		t.Fatalf("out count = %d, %v; want %d", out, err, n)
	}
	seen := map[farm.Addr]bool{}
	if err := g.EnumerateEdges(rtx, hub, DirOut, "film.actor", func(he HalfEdge) bool {
		seen[he.Other.Addr] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Errorf("enumerated %d distinct edges, want %d", len(seen), n)
	}
	// Spilled vertex must still support delete of individual edges.
	err = farm.RunTransaction(c, g.store.farm, func(tx *farm.Tx) error {
		found, err := g.DeleteEdge(tx, hub, "film.actor", actors[7])
		if err == nil && !found {
			return errors.New("edge not found in spilled list")
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	rtx = g.store.farm.CreateReadTransaction(c)
	out, _, _ = g.EdgeCounts(rtx, hub)
	if out != n-1 {
		t.Errorf("after delete out = %d, want %d", out, n-1)
	}
	// Deleting the hub erases every reverse half-edge.
	err = farm.RunTransaction(c, g.store.farm, func(tx *farm.Tx) error {
		return g.DeleteVertex(tx, hub)
	})
	if err != nil {
		t.Fatal(err)
	}
	rtx = g.store.farm.CreateReadTransaction(c)
	for i, a := range actors {
		if i == 7 {
			continue
		}
		_, in, err := g.EdgeCounts(rtx, a)
		if err != nil {
			t.Fatal(err)
		}
		if in != 0 {
			t.Fatalf("actor %d retains %d dangling in-edges", i, in)
		}
	}
}

func TestScanVerticesByType(t *testing.T) {
	_, g, c := testGraph(t, 5)
	for i := 0; i < 10; i++ {
		mustCreateVertex(t, g, c, "actor", actorVal(fmt.Sprintf("a%02d", i), "usa"))
	}
	rtx := g.store.farm.CreateReadTransaction(c)
	var pks []string
	err := g.ScanVerticesByType(rtx, "actor", func(pk bond.Value, vp VertexPtr) bool {
		pks = append(pks, pk.AsString())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pks) != 10 || pks[0] != "a00" || pks[9] != "a09" {
		t.Errorf("scan pks = %v", pks)
	}
	n, err := g.CountVertices(c, "actor")
	if err != nil || n != 10 {
		t.Errorf("CountVertices = %d, %v", n, err)
	}
}

func TestIndexRangeScan(t *testing.T) {
	_, g, c := testGraph(t, 5)
	for i, origin := range []string{"argentina", "brazil", "chile", "denmark"} {
		mustCreateVertex(t, g, c, "actor", actorVal(fmt.Sprintf("r%d", i), origin))
	}
	rtx := g.store.farm.CreateReadTransaction(c)
	count := 0
	err := g.IndexRangeScan(rtx, "actor", "origin", bond.String("b"), bond.String("d"), func(VertexPtr) bool {
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 { // brazil, chile
		t.Errorf("range scan hits = %d, want 2", count)
	}
}

func TestIndexMemberScanDir(t *testing.T) {
	_, g, c := testGraph(t, 5)
	origins := []string{"argentina", "brazil", "chile", "denmark", "ecuador", "france"}
	ptrs := make([]VertexPtr, len(origins))
	for i, origin := range origins {
		ptrs[i] = mustCreateVertex(t, g, c, "actor", actorVal(fmt.Sprintf("m%d", i), origin))
	}
	rtx := g.store.farm.CreateReadTransaction(c)
	// Membership covers brazil, denmark, france; the walk must surface only
	// those, in index order, while still counting every entry passed over.
	members := map[farm.Addr]bool{
		ptrs[1].Addr: true, ptrs[3].Addr: true, ptrs[5].Addr: true,
	}
	var got []string
	walked, err := g.IndexMemberScanDir(rtx, "actor", "origin", bond.Null, false, bond.Null, false, true, members, func(_ []byte, vp VertexPtr) bool {
		v, err := g.ReadVertex(rtx, vp)
		if err != nil {
			t.Fatal(err)
		}
		o, _ := v.Data.Field(1)
		got = append(got, o.AsString())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"france", "denmark", "brazil"}
	if len(got) != len(want) {
		t.Fatalf("member scan visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("member scan order = %v, want %v", got, want)
		}
	}
	if walked != len(origins) {
		t.Errorf("walked = %d entries, want %d (non-members counted)", walked, len(origins))
	}
	// Early stop: the callback's false halts the walk; walked reflects only
	// the entries actually passed.
	got = nil
	walked, err = g.IndexMemberScanDir(rtx, "actor", "origin", bond.Null, false, bond.Null, false, false, members, func(_ []byte, vp VertexPtr) bool {
		got = append(got, "x")
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || walked >= len(origins) {
		t.Errorf("early stop visited %d members over %d entries, want 1 over <%d", len(got), walked, len(origins))
	}
	// No index on the field: ErrNotFound like the other index scans.
	if _, err := g.IndexMemberScanDir(rtx, "actor", "birth_date", bond.Null, false, bond.Null, false, false, members, func(_ []byte, vp VertexPtr) bool { return true }); !errors.Is(err, ErrNotFound) {
		t.Errorf("unindexed field err = %v, want ErrNotFound", err)
	}
}

func TestIndexRangeScanDescending(t *testing.T) {
	_, g, c := testGraph(t, 5)
	origins := []string{"argentina", "brazil", "chile", "denmark", "ecuador", "france"}
	for i, origin := range origins {
		mustCreateVertex(t, g, c, "actor", actorVal(fmt.Sprintf("r%d", i), origin))
	}
	rtx := g.store.farm.CreateReadTransaction(c)
	readOrigin := func(vp VertexPtr) string {
		v, err := g.ReadVertex(rtx, vp)
		if err != nil {
			t.Fatal(err)
		}
		o, _ := v.Data.Field(1)
		return o.AsString()
	}
	// Unbounded descending scan visits every entry high to low.
	var desc []string
	err := g.IndexRangeScanBoundsDir(rtx, "actor", "origin", bond.Null, false, bond.Null, false, true, func(_ []byte, vp VertexPtr) bool {
		desc = append(desc, readOrigin(vp))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"france", "ecuador", "denmark", "chile", "brazil", "argentina"}
	if len(desc) != len(want) {
		t.Fatalf("desc scan visited %d, want %d", len(desc), len(want))
	}
	for i := range want {
		if desc[i] != want[i] {
			t.Fatalf("desc scan order = %v, want %v", desc, want)
		}
	}
	// Bounded descending: [brazil, ecuador) high to low.
	desc = nil
	err = g.IndexRangeScanBoundsDir(rtx, "actor", "origin", bond.String("brazil"), true, bond.String("ecuador"), false, true, func(_ []byte, vp VertexPtr) bool {
		desc = append(desc, readOrigin(vp))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(desc) != 3 || desc[0] != "denmark" || desc[2] != "brazil" {
		t.Errorf("bounded desc scan = %v, want [denmark chile brazil]", desc)
	}
	// Early stop: the reverse walk reads only the high end.
	desc = nil
	err = g.IndexRangeScanBoundsDir(rtx, "actor", "origin", bond.Null, false, bond.Null, false, true, func(_ []byte, vp VertexPtr) bool {
		desc = append(desc, readOrigin(vp))
		return len(desc) < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(desc) != 2 || desc[0] != "france" || desc[1] != "ecuador" {
		t.Errorf("early-stop desc scan = %v, want [france ecuador]", desc)
	}
	// desc=false through the same entry point matches the forward scan.
	var asc []string
	err = g.IndexRangeScanBoundsDir(rtx, "actor", "origin", bond.Null, false, bond.Null, false, false, func(_ []byte, vp VertexPtr) bool {
		asc = append(asc, readOrigin(vp))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range asc {
		if asc[i] != want[len(want)-1-i] {
			t.Fatalf("asc scan order = %v, want reverse of %v", asc, want)
		}
	}
}

func TestGraphDeletingBlocksDataPlane(t *testing.T) {
	s, g, c := testGraph(t, 5)
	if err := s.SetGraphState(c, "bing", "films", GraphDeleting); err != nil {
		t.Fatal(err)
	}
	err := farm.RunTransaction(c, s.farm, func(tx *farm.Tx) error {
		_, err := g.CreateVertex(tx, "actor", actorVal("x", "y"))
		return err
	})
	if !errors.Is(err, ErrGraphDeleting) {
		t.Errorf("create on deleting graph err = %v", err)
	}
}

func TestProxyCacheTTLRefresh(t *testing.T) {
	// A data-plane machine keeps using its proxy until the TTL expires,
	// then observes catalog changes.
	fab := fabric.New(fabric.DefaultConfig(5, fabric.Direct), nil)
	f := farm.Open(fab, farm.Config{RegionSize: 8 << 20})
	c := fab.NewCtx(0, nil)
	cfg := DefaultConfig()
	cfg.ProxyTTL = 30 * time.Millisecond
	s, err := Open(c, f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTenant(c, "t"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateGraph(c, "t", "g"); err != nil {
		t.Fatal(err)
	}
	// Machine 1 warms its proxy.
	c1 := fab.NewCtx(1, nil)
	g1, err := s.OpenGraph(c1, "t", "g")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g1.meta(c1); err != nil {
		t.Fatal(err)
	}
	// Mutate state via the catalog directly, bypassing machine 1's cache
	// invalidation (simulate the change coming from elsewhere).
	gkey := graphKey("t", "g")
	err = farm.RunTransaction(c, f, func(tx *farm.Tx) error {
		raw, _, err := s.catGet(tx, gkey)
		if err != nil {
			return err
		}
		gm, err := decodeGraphMeta(raw)
		if err != nil {
			return err
		}
		gm.State = GraphDeleting
		return s.catPut(tx, gkey, gm.encode())
	})
	if err != nil {
		t.Fatal(err)
	}
	// Within TTL: stale proxy still says active.
	m, err := g1.meta(c1)
	if err != nil {
		t.Fatal(err)
	}
	if m.State != GraphActive {
		t.Log("proxy refreshed early (timing); acceptable but unexpected")
	}
	time.Sleep(40 * time.Millisecond)
	m, err = g1.meta(c1)
	if err != nil {
		t.Fatal(err)
	}
	if m.State != GraphDeleting {
		t.Error("proxy not refreshed after TTL")
	}
}

func TestSelfLoopEdge(t *testing.T) {
	_, g, c := testGraph(t, 5)
	v := mustCreateVertex(t, g, c, "actor", actorVal("ouroboros", "mars"))
	mustCreateEdge(t, g, c, v, "film.actor", v, bond.Null)
	rtx := g.store.farm.CreateReadTransaction(c)
	out, in, err := g.EdgeCounts(rtx, v)
	if err != nil || out != 1 || in != 1 {
		t.Fatalf("self-loop counts = %d/%d, %v", out, in, err)
	}
	err = farm.RunTransaction(c, g.store.farm, func(tx *farm.Tx) error {
		return g.DeleteVertex(tx, v)
	})
	if err != nil {
		t.Fatalf("delete self-loop vertex: %v", err)
	}
}

func TestSnapshotTraversalDuringUpdates(t *testing.T) {
	_, g, c := testGraph(t, 5)
	film := mustCreateVertex(t, g, c, "film", filmVal("snapshot", "drama"))
	for i := 0; i < 5; i++ {
		a := mustCreateVertex(t, g, c, "actor", actorVal(fmt.Sprintf("s%d", i), "usa"))
		mustCreateEdge(t, g, c, film, "film.actor", a, bond.Null)
	}
	snap := g.store.farm.CreateReadTransaction(c)
	unpin := g.store.farm.PinSnapshot(snap.ReadTs())
	defer unpin()
	// Concurrent growth.
	for i := 5; i < 10; i++ {
		a := mustCreateVertex(t, g, c, "actor", actorVal(fmt.Sprintf("s%d", i), "usa"))
		mustCreateEdge(t, g, c, film, "film.actor", a, bond.Null)
	}
	count := 0
	if err := g.EnumerateEdges(snap, film, DirOut, "", func(HalfEdge) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("snapshot enumeration saw %d edges, want 5", count)
	}
}
