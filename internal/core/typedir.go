package core

import (
	"sync"
	"time"

	"a1/internal/fabric"
)

// typeDirectory is a per-machine TTL cache of a graph's full type map,
// keyed both by name and by numeric type id. Vertex headers and half-edges
// store numeric ids (compact, fixed-size), so the data plane constantly
// maps ids back to schemas; rebuilding that map from the catalog on every
// operation would be the "expensive proxy materialization" the paper's
// §3.1 cache exists to avoid.
type typeDirectory struct {
	vByID   map[uint32]*vertexTypeMeta
	vByName map[string]*vertexTypeMeta
	eByID   map[uint32]*edgeTypeMeta
	eByName map[string]*edgeTypeMeta
	expires time.Duration
}

type typeDirCache struct {
	mu   sync.Mutex
	dirs map[string]*typeDirectory // keyed tenant/graph
}

// typeDir returns the cached type directory for a graph, rebuilding it from
// the catalog when the TTL lapses.
func (s *Store) typeDir(c *fabric.Ctx, tenant, graph string) (*typeDirectory, error) {
	return s.typeDirByKey(c, tenant+"/"+graph, tenant, graph)
}

// typeDirByKey is typeDir with the cache key precomputed by the caller
// (Graph handles build theirs once), keeping the per-read lookup
// allocation-free.
func (s *Store) typeDirByKey(c *fabric.Ctx, cacheKey, tenant, graph string) (*typeDirectory, error) {
	cache := s.typeDirs[c.M]
	now := c.Now()
	cache.mu.Lock()
	dir, ok := cache.dirs[cacheKey]
	cache.mu.Unlock()
	if ok && now < dir.expires {
		return dir, nil
	}
	dir = &typeDirectory{
		vByID:   make(map[uint32]*vertexTypeMeta),
		vByName: make(map[string]*vertexTypeMeta),
		eByID:   make(map[uint32]*edgeTypeMeta),
		eByName: make(map[string]*edgeTypeMeta),
		expires: now + s.cfg.ProxyTTL,
	}
	tx := s.farm.CreateReadTransaction(c)
	var decodeErr error
	err := s.catScanPrefix(tx, vtypePrefix(tenant, graph), func(_ string, raw []byte) bool {
		m, err := decodeVertexTypeMeta(raw)
		if err != nil {
			decodeErr = err
			return false
		}
		dir.vByID[m.ID] = m
		dir.vByName[m.Name] = m
		return true
	})
	if err == nil {
		err = decodeErr
	}
	if err != nil {
		return nil, err
	}
	decodeErr = nil
	err = s.catScanPrefix(tx, etypePrefix(tenant, graph), func(_ string, raw []byte) bool {
		m, err := decodeEdgeTypeMeta(raw)
		if err != nil {
			decodeErr = err
			return false
		}
		dir.eByID[m.ID] = m
		dir.eByName[m.Name] = m
		return true
	})
	if err == nil {
		err = decodeErr
	}
	if err != nil {
		return nil, err
	}
	cache.mu.Lock()
	cache.dirs[cacheKey] = dir
	cache.mu.Unlock()
	return dir, nil
}

// invalidateTypeDir drops the directory on every machine after a type
// change (the owning machine sees it immediately; in production other
// machines would converge within the TTL).
func (s *Store) invalidateTypeDir(tenant, graph string) {
	cacheKey := tenant + "/" + graph
	for _, cache := range s.typeDirs {
		cache.mu.Lock()
		delete(cache.dirs, cacheKey)
		cache.mu.Unlock()
	}
}
