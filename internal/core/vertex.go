package core

import (
	"encoding/binary"
	"fmt"
	"sync"

	"a1/internal/bond"
	"a1/internal/fabric"
	"a1/internal/farm"
)

// Vertex storage (paper §3.2, Figure 6): a vertex is two FaRM objects — a
// fixed-size header and a variable-length Bond-serialized data object. The
// header holds the type, a pointer to the data, and the incoming/outgoing
// edge list references. As the vertex gains edges or new data the header
// contents change but its address — the "vertex pointer" every index and
// half-edge refers to — never does. Data and edge lists are allocated in
// the header's region (locality), while headers themselves are placed on a
// random machine across the cluster.

// vertexHdrSize is the encoded header payload length.
const vertexHdrSize = 52

// header flag bits.
const (
	flagOutSpilled = 1 << 0 // outgoing edges live in the global B-tree
	flagInSpilled  = 1 << 1 // incoming edges live in the global B-tree
)

// vertexHdr is the decoded header.
type vertexHdr struct {
	typeID   uint32
	flags    uint32
	data     farm.Ptr
	outList  farm.Ptr // inline half-edge array (when not spilled)
	outCount uint32
	inList   farm.Ptr
	inCount  uint32
}

func (h *vertexHdr) encode(dst []byte) {
	binary.LittleEndian.PutUint32(dst[0:], h.typeID)
	binary.LittleEndian.PutUint32(dst[4:], h.flags)
	putPtr(dst[8:], h.data)
	putPtr(dst[20:], h.outList)
	binary.LittleEndian.PutUint32(dst[32:], h.outCount)
	putPtr(dst[36:], h.inList)
	binary.LittleEndian.PutUint32(dst[48:], h.inCount)
}

func decodeVertexHdr(b []byte) (*vertexHdr, error) {
	h, err := decodeVertexHdrVal(b)
	if err != nil {
		return nil, err
	}
	return &h, nil
}

// decodeVertexHdrVal decodes by value: the read hot path decodes millions
// of headers and must not heap-allocate one struct per vertex.
func decodeVertexHdrVal(b []byte) (vertexHdr, error) {
	if len(b) < vertexHdrSize {
		return vertexHdr{}, fmt.Errorf("a1: short vertex header (%d bytes)", len(b))
	}
	return vertexHdr{
		typeID:   binary.LittleEndian.Uint32(b[0:]),
		flags:    binary.LittleEndian.Uint32(b[4:]),
		data:     getPtr(b[8:]),
		outList:  getPtr(b[20:]),
		outCount: binary.LittleEndian.Uint32(b[32:]),
		inList:   getPtr(b[36:]),
		inCount:  binary.LittleEndian.Uint32(b[48:]),
	}, nil
}

func putPtr(dst []byte, p farm.Ptr) {
	binary.LittleEndian.PutUint64(dst[0:], uint64(p.Addr))
	binary.LittleEndian.PutUint32(dst[8:], p.Size)
}

func getPtr(b []byte) farm.Ptr {
	return farm.Ptr{
		Addr: farm.Addr(binary.LittleEndian.Uint64(b[0:])),
		Size: binary.LittleEndian.Uint32(b[8:]),
	}
}

// VertexPtr identifies a vertex: the fat pointer to its header object.
type VertexPtr = farm.Ptr

// Vertex is a materialized vertex.
type Vertex struct {
	Ptr      VertexPtr
	TypeID   uint32
	TypeName string
	Data     bond.Value
	OutCount int
	InCount  int
}

// pkOf extracts and validates the primary key from a vertex value.
func pkOf(vt *vertexTypeMeta, val bond.Value) (bond.Value, error) {
	pk, ok := val.Field(vt.PKField)
	if !ok || pk.IsZero() {
		f, _ := vt.Schema.FieldByID(vt.PKField)
		return bond.Null, fmt.Errorf("%w: primary key %q missing or null", ErrBadSchema, f.Name)
	}
	return pk, nil
}

// pkIndexKey is the primary index key encoding.
func pkIndexKey(pk bond.Value) []byte { return bond.OrderedEncode(nil, pk) }

// secIndexKey is the secondary index key: attribute value followed by the
// vertex address (secondary keys are non-unique, §3).
func secIndexKey(attr bond.Value, vp farm.Ptr) []byte {
	k := bond.OrderedEncode(nil, attr)
	return binary.BigEndian.AppendUint64(k, uint64(vp.Addr))
}

func ptrValue(p farm.Ptr) []byte {
	var b [12]byte
	putPtr(b[:], p)
	return b[:]
}

func valuePtr(b []byte) farm.Ptr {
	if len(b) < 12 {
		return farm.NilPtr
	}
	return getPtr(b)
}

// CreateVertex inserts a vertex of the named type inside tx. The value must
// conform to the type's schema and carry a unique, non-null primary key.
// Returns the new vertex pointer.
func (g *Graph) CreateVertex(tx *farm.Tx, typeName string, val bond.Value) (VertexPtr, error) {
	c := tx.Ctx()
	if _, err := g.requireActive(c); err != nil {
		return farm.NilPtr, err
	}
	vt, err := g.vertexType(c, typeName)
	if err != nil {
		return farm.NilPtr, err
	}
	if err := vt.Schema.Validate(val); err != nil {
		return farm.NilPtr, fmt.Errorf("%w: %v", ErrBadSchema, err)
	}
	pk, err := pkOf(vt, val)
	if err != nil {
		return farm.NilPtr, err
	}
	primary := farm.OpenBTree(g.store.farm, vt.Primary)
	pkKey := pkIndexKey(pk)
	if _, exists, err := primary.Get(tx, pkKey); err != nil {
		return farm.NilPtr, err
	} else if exists {
		return farm.NilPtr, fmt.Errorf("%w: %s %v", ErrExists, typeName, pk)
	}
	// Header on a (randomly) chosen machine; data co-located with it.
	target := g.store.placementTarget(c)
	hdrBuf, err := tx.AllocOn(target, vertexHdrSize)
	if err != nil {
		return farm.NilPtr, err
	}
	dataBytes := bond.Marshal(val)
	dataBuf, err := tx.Alloc(uint32(len(dataBytes)), hdrBuf.Addr())
	if err != nil {
		return farm.NilPtr, err
	}
	copy(dataBuf.Data(), dataBytes)
	hdr := &vertexHdr{typeID: vt.ID, data: dataBuf.Ptr()}
	hdr.encode(hdrBuf.Data())
	vp := hdrBuf.Ptr()
	if err := primary.Put(tx, pkKey, ptrValue(vp)); err != nil {
		return farm.NilPtr, err
	}
	for _, si := range vt.Secondary {
		attr, ok := val.Field(si.FieldID)
		if !ok || attr.IsNull() {
			continue
		}
		st := farm.OpenBTree(g.store.farm, si.Tree)
		if err := st.Put(tx, secIndexKey(attr, vp), ptrValue(vp)); err != nil {
			return farm.NilPtr, err
		}
	}
	g.statsVertexAdded(tx, target, vt, val)
	if l := g.store.updateLogger(); l != nil {
		if err := l.LogVertexPut(tx, g.tenant, g.name, typeName, pk, val); err != nil {
			return farm.NilPtr, err
		}
	}
	return vp, nil
}

// LookupVertex finds a vertex by ⟨type, primary key⟩ through the primary
// index (paper §3: the unique vertex identity).
func (g *Graph) LookupVertex(tx *farm.Tx, typeName string, pk bond.Value) (VertexPtr, bool, error) {
	vt, err := g.vertexType(tx.Ctx(), typeName)
	if err != nil {
		return farm.NilPtr, false, err
	}
	primary := farm.OpenBTree(g.store.farm, vt.Primary)
	v, ok, err := primary.Get(tx, pkIndexKey(pk))
	if err != nil || !ok {
		return farm.NilPtr, false, err
	}
	return valuePtr(v), true, nil
}

// readHeader fetches and decodes a vertex header.
func (g *Graph) readHeader(tx *farm.Tx, vp VertexPtr) (*farm.ObjBuf, *vertexHdr, error) {
	buf, err := tx.ReadSized(vp.Addr, vertexHdrSize)
	if err != nil {
		if err == farm.ErrNotFound {
			return nil, nil, ErrNotFound
		}
		return nil, nil, err
	}
	hdr, err := decodeVertexHdr(buf.Data())
	if err != nil {
		return nil, nil, err
	}
	return buf, hdr, nil
}

// readScratch is the reusable buffer pair for the two reads of one
// vertex materialization. Decoding copies everything out of the buffers
// (bond values own their strings and blobs), so the scratch never escapes
// and one pair serves any number of sequential reads.
type readScratch struct {
	hdr  []byte
	data []byte
}

var readScratchPool = sync.Pool{New: func() any { return new(readScratch) }}

// readVertexWith materializes one vertex using a caller-resolved type
// directory and scratch buffers — the batched and pooled read paths hoist
// both out of their loops.
func (g *Graph) readVertexWith(tx *farm.Tx, dir *typeDirectory, vp VertexPtr, s *readScratch) (*Vertex, error) {
	hb, err := tx.ReadSizedInto(vp.Addr, vertexHdrSize, s.hdr)
	if err != nil {
		if err == farm.ErrNotFound {
			return nil, ErrNotFound
		}
		return nil, err
	}
	s.hdr = hb
	hdr, err := decodeVertexHdrVal(hb)
	if err != nil {
		return nil, err
	}
	vt, ok := dir.vByID[hdr.typeID]
	if !ok {
		return nil, fmt.Errorf("%w: vertex type id %d", ErrNoSuchType, hdr.typeID)
	}
	db, err := tx.ReadSizedInto(hdr.data.Addr, hdr.data.Size, s.data)
	if err != nil {
		return nil, err
	}
	s.data = db
	val, err := bond.UnmarshalStruct(vt.Schema, db)
	if err != nil {
		return nil, err
	}
	return &Vertex{
		Ptr:      vp,
		TypeID:   hdr.typeID,
		TypeName: vt.Name,
		Data:     val,
		OutCount: int(hdr.outCount),
		InCount:  int(hdr.inCount),
	}, nil
}

// ReadVertex materializes a vertex: header read plus data read — the two
// consecutive RDMA reads of §3.2.
func (g *Graph) ReadVertex(tx *farm.Tx, vp VertexPtr) (*Vertex, error) {
	dir, err := g.types(tx.Ctx())
	if err != nil {
		return nil, err
	}
	s := readScratchPool.Get().(*readScratch)
	defer readScratchPool.Put(s)
	return g.readVertexWith(tx, dir, vp, s)
}

// ReadVertices materializes a batch of vertices in one call: the type
// directory is resolved once and the scratch buffers are reused across
// the whole batch, so the per-vertex cost is the two object reads plus
// the value decode. The result is parallel to vps; a vertex that has
// vanished since its pointer was collected (concurrent delete) yields a
// nil slot rather than failing the batch. Reads are sequential within
// the transaction — the fabric-level win comes from the caller shipping
// the batch to the owner first (execLevel's contract).
func (g *Graph) ReadVertices(tx *farm.Tx, vps []VertexPtr) ([]*Vertex, error) {
	out := make([]*Vertex, len(vps))
	if len(vps) == 0 {
		return out, nil
	}
	dir, err := g.types(tx.Ctx())
	if err != nil {
		return nil, err
	}
	s := readScratchPool.Get().(*readScratch)
	defer readScratchPool.Put(s)
	for i, vp := range vps {
		v, err := g.readVertexWith(tx, dir, vp, s)
		if err == ErrNotFound {
			continue
		}
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// VertexPKOf extracts the primary key of an already-materialized vertex
// without any further object reads.
func (g *Graph) VertexPKOf(c *fabric.Ctx, v *Vertex) (bond.Value, error) {
	dir, err := g.types(c)
	if err != nil {
		return bond.Null, err
	}
	vt, ok := dir.vByID[v.TypeID]
	if !ok {
		return bond.Null, fmt.Errorf("%w: vertex type id %d", ErrNoSuchType, v.TypeID)
	}
	pk, _ := v.Data.Field(vt.PKField)
	return pk, nil
}

// UpdateVertex replaces a vertex's attribute data. The primary key must not
// change. Secondary index entries are kept consistent transactionally.
func (g *Graph) UpdateVertex(tx *farm.Tx, vp VertexPtr, newVal bond.Value) error {
	c := tx.Ctx()
	if _, err := g.requireActive(c); err != nil {
		return err
	}
	hdrBuf, hdr, err := g.readHeader(tx, vp)
	if err != nil {
		return err
	}
	dir, err := g.store.typeDir(c, g.tenant, g.name)
	if err != nil {
		return err
	}
	vt, ok := dir.vByID[hdr.typeID]
	if !ok {
		return fmt.Errorf("%w: vertex type id %d", ErrNoSuchType, hdr.typeID)
	}
	if err := vt.Schema.Validate(newVal); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSchema, err)
	}
	oldBuf, err := tx.Read(hdr.data)
	if err != nil {
		return err
	}
	oldVal, err := bond.UnmarshalStruct(vt.Schema, oldBuf.Data())
	if err != nil {
		return err
	}
	oldPK, _ := oldVal.Field(vt.PKField)
	newPK, err := pkOf(vt, newVal)
	if err != nil {
		return err
	}
	if !oldPK.Equal(newPK) {
		return ErrImmutablePK
	}
	newBytes := bond.Marshal(newVal)
	newDataPtr := hdr.data
	if uint32(len(newBytes)) <= oldBuf.Cap() {
		w, err := tx.OpenForWrite(oldBuf)
		if err != nil {
			return err
		}
		if err := w.Resize(uint32(len(newBytes))); err != nil {
			return err
		}
		copy(w.Data(), newBytes)
		newDataPtr = w.Ptr()
	} else {
		// Grown beyond the slot: allocate a fresh data object in the same
		// region and re-link the header (FaRM objects have fixed capacity).
		nb, err := tx.Alloc(uint32(len(newBytes)), vp.Addr)
		if err != nil {
			return err
		}
		copy(nb.Data(), newBytes)
		if err := tx.Free(oldBuf); err != nil {
			return err
		}
		newDataPtr = nb.Ptr()
	}
	if newDataPtr != hdr.data {
		w, err := tx.OpenForWrite(hdrBuf)
		if err != nil {
			return err
		}
		hdr.data = newDataPtr
		hdr.encode(w.Data())
	}
	// Reconcile secondary indexes for changed attributes.
	for _, si := range vt.Secondary {
		oldAttr, oldOK := oldVal.Field(si.FieldID)
		newAttr, newOK := newVal.Field(si.FieldID)
		if oldOK == newOK && (!oldOK || oldAttr.Equal(newAttr)) {
			continue
		}
		st := farm.OpenBTree(g.store.farm, si.Tree)
		if oldOK && !oldAttr.IsNull() {
			if _, err := st.Delete(tx, secIndexKey(oldAttr, vp)); err != nil {
				return err
			}
		}
		if newOK && !newAttr.IsNull() {
			if err := st.Put(tx, secIndexKey(newAttr, vp), ptrValue(vp)); err != nil {
				return err
			}
		}
	}
	g.statsVertexUpdated(tx, vp, vt, oldVal, newVal)
	if l := g.store.updateLogger(); l != nil {
		if err := l.LogVertexPut(tx, g.tenant, g.name, vt.Name, newPK, newVal); err != nil {
			return err
		}
	}
	return nil
}

// DeleteVertex removes a vertex and every edge attached to it: the
// incoming and outgoing half-edge lists identify all remote half-edges
// that must be removed so that no dangling edge survives (paper §3.2).
func (g *Graph) DeleteVertex(tx *farm.Tx, vp VertexPtr) error {
	c := tx.Ctx()
	// Deletes stay legal while the graph is in the Deleting state: the
	// asynchronous DeleteGraph workflow itself drains vertices (§3.3).
	if _, err := g.meta(c); err != nil {
		return err
	}
	hdrBuf, hdr, err := g.readHeader(tx, vp)
	if err != nil {
		return err
	}
	dir, err := g.store.typeDir(c, g.tenant, g.name)
	if err != nil {
		return err
	}
	vt, ok := dir.vByID[hdr.typeID]
	if !ok {
		return fmt.Errorf("%w: vertex type id %d", ErrNoSuchType, hdr.typeID)
	}
	dataBuf, err := tx.Read(hdr.data)
	if err != nil {
		return err
	}
	val, err := bond.UnmarshalStruct(vt.Schema, dataBuf.Data())
	if err != nil {
		return err
	}
	pk, _ := val.Field(vt.PKField)

	gm, err := g.meta(c)
	if err != nil {
		return err
	}
	// Collect both half-edge lists, then detach the remote ends.
	var outs, ins []HalfEdge
	if err := g.enumerateHalfEdges(tx, gm, vp, hdr, DirOut, 0, func(he HalfEdge) bool {
		outs = append(outs, he)
		return true
	}); err != nil {
		return err
	}
	if err := g.enumerateHalfEdges(tx, gm, vp, hdr, DirIn, 0, func(he HalfEdge) bool {
		ins = append(ins, he)
		return true
	}); err != nil {
		return err
	}
	freedData := map[farm.Addr]bool{}
	for _, he := range outs {
		if he.Other.Addr != vp.Addr {
			if err := g.removeHalfEdge(tx, gm, he.Other, DirIn, he.TypeID, vp); err != nil {
				return err
			}
		}
		if et, ok := dir.eByID[he.TypeID]; ok {
			g.statsEdgeRemoved(tx, vp, et.Name)
		}
		if err := g.freeEdgeData(tx, he.Data, freedData); err != nil {
			return err
		}
		if l := g.store.updateLogger(); l != nil {
			key, kerr := g.edgeIdentity(tx, dir, vp, vt, pk, he, DirOut)
			if kerr == nil {
				if err := l.LogEdgeDelete(tx, g.tenant, g.name, key); err != nil {
					return err
				}
			}
		}
	}
	for _, he := range ins {
		if he.Other.Addr != vp.Addr {
			if err := g.removeHalfEdge(tx, gm, he.Other, DirOut, he.TypeID, vp); err != nil {
				return err
			}
			if et, ok := dir.eByID[he.TypeID]; ok {
				g.statsEdgeRemoved(tx, he.Other, et.Name)
			}
			if l := g.store.updateLogger(); l != nil {
				key, kerr := g.edgeIdentity(tx, dir, vp, vt, pk, he, DirIn)
				if kerr == nil {
					if err := l.LogEdgeDelete(tx, g.tenant, g.name, key); err != nil {
						return err
					}
				}
			}
		}
		if err := g.freeEdgeData(tx, he.Data, freedData); err != nil {
			return err
		}
	}
	// Drop this vertex's own edge-list storage.
	if err := g.dropEdgeLists(tx, gm, vp, hdr); err != nil {
		return err
	}
	// Remove index entries.
	primary := farm.OpenBTree(g.store.farm, vt.Primary)
	if _, err := primary.Delete(tx, pkIndexKey(pk)); err != nil {
		return err
	}
	for _, si := range vt.Secondary {
		attr, ok := val.Field(si.FieldID)
		if !ok || attr.IsNull() {
			continue
		}
		st := farm.OpenBTree(g.store.farm, si.Tree)
		if _, err := st.Delete(tx, secIndexKey(attr, vp)); err != nil {
			return err
		}
	}
	// Free data + header.
	if err := tx.Free(dataBuf); err != nil {
		return err
	}
	if err := tx.Free(hdrBuf); err != nil {
		return err
	}
	g.statsVertexRemoved(tx, vp, vt, val)
	if l := g.store.updateLogger(); l != nil {
		if err := l.LogVertexDelete(tx, g.tenant, g.name, vt.Name, pk); err != nil {
			return err
		}
	}
	return nil
}

// freeEdgeData frees an edge's data object exactly once.
func (g *Graph) freeEdgeData(tx *farm.Tx, p farm.Ptr, seen map[farm.Addr]bool) error {
	if p.IsNil() || seen[p.Addr] {
		return nil
	}
	seen[p.Addr] = true
	buf, err := tx.Read(p)
	if err != nil {
		if err == farm.ErrNotFound {
			return nil
		}
		return err
	}
	return tx.Free(buf)
}

// VertexPK returns a vertex's ⟨type name, primary key⟩ identity.
func (g *Graph) VertexPK(tx *farm.Tx, vp VertexPtr) (string, bond.Value, error) {
	dir, err := g.types(tx.Ctx())
	if err != nil {
		return "", bond.Null, err
	}
	s := readScratchPool.Get().(*readScratch)
	defer readScratchPool.Put(s)
	v, err := g.readVertexWith(tx, dir, vp, s)
	if err != nil {
		return "", bond.Null, err
	}
	vt := dir.vByID[v.TypeID]
	pk, _ := v.Data.Field(vt.PKField)
	return v.TypeName, pk, nil
}

// ScanVerticesByType visits every vertex of a type in primary key order.
func (g *Graph) ScanVerticesByType(tx *farm.Tx, typeName string, fn func(pk bond.Value, vp VertexPtr) bool) error {
	vt, err := g.vertexType(tx.Ctx(), typeName)
	if err != nil {
		return err
	}
	primary := farm.OpenBTree(g.store.farm, vt.Primary)
	var scanErr error
	err = primary.Scan(tx, nil, nil, func(k, v []byte) bool {
		pk, _, err := bond.OrderedDecode(k)
		if err != nil {
			scanErr = err
			return false
		}
		return fn(pk, valuePtr(v))
	})
	if err == nil {
		err = scanErr
	}
	return err
}

// IndexScan visits vertices whose secondary-indexed attribute equals value.
func (g *Graph) IndexScan(tx *farm.Tx, typeName, fieldName string, value bond.Value, fn func(vp VertexPtr) bool) error {
	vt, err := g.vertexType(tx.Ctx(), typeName)
	if err != nil {
		return err
	}
	f, ok := vt.Schema.FieldByName(fieldName)
	if !ok {
		return fmt.Errorf("%w: field %q", ErrBadSchema, fieldName)
	}
	for _, si := range vt.Secondary {
		if si.FieldID != f.ID {
			continue
		}
		st := farm.OpenBTree(g.store.farm, si.Tree)
		prefix := bond.OrderedEncode(nil, value)
		return st.Scan(tx, prefix, prefixEnd(prefix), func(_, v []byte) bool {
			return fn(valuePtr(v))
		})
	}
	return fmt.Errorf("%w: no secondary index on %s.%s", ErrNotFound, typeName, fieldName)
}

// IndexRangeScan visits vertices whose secondary-indexed attribute lies in
// [lo, hi) — an extension beyond the paper's equality lookups.
func (g *Graph) IndexRangeScan(tx *farm.Tx, typeName, fieldName string, lo, hi bond.Value, fn func(vp VertexPtr) bool) error {
	return g.IndexRangeScanBounds(tx, typeName, fieldName, lo, true, hi, false, fn)
}

// IndexRangeScanBounds visits vertices whose secondary-indexed attribute
// lies between lo and hi with explicit inclusivity per side; a Null bound
// is unbounded. Bound values must match the indexed field's stored kind
// (the ordered key encoding is kind-tagged), which the query layer
// guarantees by coercion. Secondary keys carry the vertex address as a
// suffix, so inclusive/exclusive edges are realized by starting or
// stopping at the key-prefix boundary.
func (g *Graph) IndexRangeScanBounds(tx *farm.Tx, typeName, fieldName string, lo bond.Value, loInc bool, hi bond.Value, hiInc bool, fn func(vp VertexPtr) bool) error {
	return g.IndexRangeScanBoundsDir(tx, typeName, fieldName, lo, loInc, hi, hiInc, false,
		func(_ []byte, vp VertexPtr) bool { return fn(vp) })
}

// IndexRangeScanBoundsDir is IndexRangeScanBounds with an explicit
// iteration direction: desc=true visits the range in descending attribute
// order (the B-tree's reverse scan), so ordered top-K readers can stop at
// the high end after a handful of hits. The callback also receives the
// entry's ordered-encoded attribute key (the index key minus its vertex
// address suffix), so callers can detect attribute ties without reading
// the vertex.
func (g *Graph) IndexRangeScanBoundsDir(tx *farm.Tx, typeName, fieldName string, lo bond.Value, loInc bool, hi bond.Value, hiInc bool, desc bool, fn func(attrKey []byte, vp VertexPtr) bool) error {
	_, err := g.indexWalkDir(tx, typeName, fieldName, lo, loInc, hi, hiInc, desc, nil, fn)
	return err
}

// IndexMemberScanDir walks a secondary index in attribute order like
// IndexRangeScanBoundsDir, but restricted to a membership set of vertex
// addresses: entries whose vertex is outside the set are skipped inside the
// walk without surfacing to the callback. This is the owner-side half of an
// ordered traversal terminal — each machine walks the index in result order
// but only its slice of the query frontier is eligible, so the expensive
// per-vertex work touches frontier members only. Returns the number of
// index entries passed over (skipped non-members plus accepted members), so
// callers can account the walk's length against a full frontier
// materialization.
func (g *Graph) IndexMemberScanDir(tx *farm.Tx, typeName, fieldName string, lo bond.Value, loInc bool, hi bond.Value, hiInc bool, desc bool, members map[farm.Addr]bool, fn func(attrKey []byte, vp VertexPtr) bool) (int, error) {
	return g.indexWalkDir(tx, typeName, fieldName, lo, loInc, hi, hiInc, desc, members, fn)
}

// indexWalkDir is the shared ordered secondary-index walk: bounds realize
// inclusive/exclusive edges at key-prefix boundaries, a non-nil membership
// set filters entries before the callback, and the entry count walked is
// returned.
func (g *Graph) indexWalkDir(tx *farm.Tx, typeName, fieldName string, lo bond.Value, loInc bool, hi bond.Value, hiInc bool, desc bool, members map[farm.Addr]bool, fn func(attrKey []byte, vp VertexPtr) bool) (int, error) {
	vt, err := g.vertexType(tx.Ctx(), typeName)
	if err != nil {
		return 0, err
	}
	f, ok := vt.Schema.FieldByName(fieldName)
	if !ok {
		return 0, fmt.Errorf("%w: field %q", ErrBadSchema, fieldName)
	}
	for _, si := range vt.Secondary {
		if si.FieldID != f.ID {
			continue
		}
		st := farm.OpenBTree(g.store.farm, si.Tree)
		var from, to []byte
		if !lo.IsNull() {
			enc := bond.OrderedEncode(nil, lo)
			if loInc {
				from = enc // every key with attr == lo sorts after the bare prefix
			} else {
				from = prefixEnd(enc) // skip all keys with attr == lo
			}
		}
		if !hi.IsNull() {
			enc := bond.OrderedEncode(nil, hi)
			if hiInc {
				to = prefixEnd(enc) // include all keys with attr == hi
			} else {
				to = enc
			}
		}
		walked := 0
		visit := func(k, v []byte) bool {
			walked++
			vp := valuePtr(v)
			if members != nil && !members[vp.Addr] {
				return true
			}
			attr := k
			if len(attr) >= 8 {
				attr = attr[:len(attr)-8] // strip the address suffix
			}
			return fn(attr, vp)
		}
		var scanErr error
		if desc {
			scanErr = st.ScanDesc(tx, from, to, visit)
		} else {
			scanErr = st.Scan(tx, from, to, visit)
		}
		return walked, scanErr
	}
	return 0, fmt.Errorf("%w: no secondary index on %s.%s", ErrNotFound, typeName, fieldName)
}

// CountVertices returns the number of vertices of a type (primary index
// cardinality).
func (g *Graph) CountVertices(c *fabric.Ctx, typeName string) (int, error) {
	tx := g.store.farm.CreateReadTransaction(c)
	vt, err := g.vertexType(c, typeName)
	if err != nil {
		return 0, err
	}
	primary := farm.OpenBTree(g.store.farm, vt.Primary)
	return primary.Count(tx, nil, nil)
}
