package core

import (
	"fmt"

	"a1/internal/bond"
	"a1/internal/fabric"
	"a1/internal/farm"
)

// Control plane (paper §3): tenants, graphs and types. Each control-plane
// operation runs in its own transaction and cannot be grouped with data
// plane operations. A1 organizes data as tenant → graphs → types →
// vertices/edges; tenants are the isolation container.

// CreateTenant registers a tenant.
func (s *Store) CreateTenant(c *fabric.Ctx, tenant string) error {
	key := catTenant + tenant
	return farm.RunTransaction(c, s.farm, func(tx *farm.Tx) error {
		if _, exists, err := s.catGet(tx, key); err != nil {
			return err
		} else if exists {
			return fmt.Errorf("%w: tenant %q", ErrExists, tenant)
		}
		m := tenantMeta{Name: tenant}
		return s.catPut(tx, key, m.encode())
	})
}

// CreateGraph creates a graph under a tenant, allocating its global edge
// B-trees.
func (s *Store) CreateGraph(c *fabric.Ctx, tenant, graph string) error {
	tkey := catTenant + tenant
	gkey := graphKey(tenant, graph)
	return farm.RunTransaction(c, s.farm, func(tx *farm.Tx) error {
		if _, exists, err := s.catGet(tx, tkey); err != nil {
			return err
		} else if !exists {
			return fmt.Errorf("%w: tenant %q", ErrNotFound, tenant)
		}
		if _, exists, err := s.catGet(tx, gkey); err != nil {
			return err
		} else if exists {
			return fmt.Errorf("%w: graph %q", ErrExists, graph)
		}
		outTree, err := farm.CreateBTree(tx, farm.NilAddr)
		if err != nil {
			return err
		}
		inTree, err := farm.CreateBTree(tx, farm.NilAddr)
		if err != nil {
			return err
		}
		m := graphMeta{
			Name:       graph,
			State:      GraphActive,
			NextTypeID: 1, // id 0 is the "any type" sentinel in edge filters
			OutTree:    outTree.Desc(),
			InTree:     inTree.Desc(),
		}
		return s.catPut(tx, gkey, m.encode())
	})
}

func graphKey(tenant, graph string) string    { return catGraph + tenant + "/" + graph }
func vtypeKey(tenant, graph, t string) string { return catVertexType + tenant + "/" + graph + "/" + t }
func etypeKey(tenant, graph, t string) string { return catEdgeType + tenant + "/" + graph + "/" + t }
func vtypePrefix(tenant, graph string) string { return catVertexType + tenant + "/" + graph + "/" }
func etypePrefix(tenant, graph string) string { return catEdgeType + tenant + "/" + graph + "/" }

// Graph is a data-plane handle: the graph's metadata proxy plus lazily
// resolved type proxies, all served from the per-machine catalog cache.
type Graph struct {
	store  *Store
	tenant string
	name   string
	// Catalog keys are precomputed once per handle: the data plane
	// resolves meta and type directories on every vertex read, and the
	// per-call key concatenation was a measurable hot-path allocation.
	gKey   string // graphKey(tenant, name)
	dirKey string // type-directory cache key (tenant/name)
}

func newGraph(s *Store, tenant, graph string) *Graph {
	return &Graph{
		store:  s,
		tenant: tenant,
		name:   graph,
		gKey:   graphKey(tenant, graph),
		dirKey: tenant + "/" + graph,
	}
}

// types returns the graph's cached type directory (id- and name-keyed
// schema map) without rebuilding the cache key per call.
func (g *Graph) types(c *fabric.Ctx) (*typeDirectory, error) {
	return g.store.typeDirByKey(c, g.dirKey, g.tenant, g.name)
}

// OpenGraph returns a handle on an existing graph.
func (s *Store) OpenGraph(c *fabric.Ctx, tenant, graph string) (*Graph, error) {
	g := newGraph(s, tenant, graph)
	if _, err := g.meta(c); err != nil {
		return nil, err
	}
	return g, nil
}

// Tenant returns the owning tenant name.
func (g *Graph) Tenant() string { return g.tenant }

// Name returns the graph name.
func (g *Graph) Name() string { return g.name }

// Store returns the owning store.
func (g *Graph) Store() *Store { return g.store }

// meta resolves the graph metadata through the proxy cache.
func (g *Graph) meta(c *fabric.Ctx) (*graphMeta, error) {
	v, err := g.store.proxyGet(c, g.gKey, func(raw []byte) (interface{}, error) {
		return decodeGraphMeta(raw)
	})
	if err != nil {
		return nil, err
	}
	return v.(*graphMeta), nil
}

// requireActive fails data-plane operations once deletion has begun.
func (g *Graph) requireActive(c *fabric.Ctx) (*graphMeta, error) {
	m, err := g.meta(c)
	if err != nil {
		return nil, err
	}
	if m.State != GraphActive {
		return nil, ErrGraphDeleting
	}
	return m, nil
}

// vertexType resolves a vertex type proxy by name.
func (g *Graph) vertexType(c *fabric.Ctx, name string) (*vertexTypeMeta, error) {
	// Fast path: the type directory already holds every known type by
	// name with the same TTL as the proxy cache, and costs no key
	// allocation. A name it lacks may simply be newer than the cached
	// directory, so misses fall through to the authoritative proxy read.
	if dir, err := g.types(c); err == nil {
		if m, ok := dir.vByName[name]; ok {
			return m, nil
		}
	}
	v, err := g.store.proxyGet(c, vtypeKey(g.tenant, g.name, name), func(raw []byte) (interface{}, error) {
		return decodeVertexTypeMeta(raw)
	})
	if err != nil {
		if err == ErrNotFound {
			return nil, fmt.Errorf("%w: vertex type %q", ErrNoSuchType, name)
		}
		return nil, err
	}
	return v.(*vertexTypeMeta), nil
}

// edgeType resolves an edge type proxy by name.
func (g *Graph) edgeType(c *fabric.Ctx, name string) (*edgeTypeMeta, error) {
	if dir, err := g.types(c); err == nil {
		if m, ok := dir.eByName[name]; ok {
			return m, nil
		}
	}
	v, err := g.store.proxyGet(c, etypeKey(g.tenant, g.name, name), func(raw []byte) (interface{}, error) {
		return decodeEdgeTypeMeta(raw)
	})
	if err != nil {
		if err == ErrNotFound {
			return nil, fmt.Errorf("%w: edge type %q", ErrNoSuchType, name)
		}
		return nil, err
	}
	return v.(*edgeTypeMeta), nil
}

// VertexTypeSchema returns a vertex type's Bond schema.
func (g *Graph) VertexTypeSchema(c *fabric.Ctx, name string) (*bond.Schema, error) {
	vt, err := g.vertexType(c, name)
	if err != nil {
		return nil, err
	}
	return vt.Schema, nil
}

// EdgeTypeSchema returns an edge type's Bond schema (nil for data-less
// edge types).
func (g *Graph) EdgeTypeSchema(c *fabric.Ctx, name string) (*bond.Schema, error) {
	et, err := g.edgeType(c, name)
	if err != nil {
		return nil, err
	}
	return et.Schema, nil
}

// VertexTypeIndexInfo returns the primary key field name and the
// secondary-indexed field names of a vertex type (used by disaster
// recovery to snapshot type definitions).
func (g *Graph) VertexTypeIndexInfo(c *fabric.Ctx, name string) (pkField string, secondary []string, err error) {
	vt, err := g.vertexType(c, name)
	if err != nil {
		return "", nil, err
	}
	pk, _ := vt.Schema.FieldByID(vt.PKField)
	for _, si := range vt.Secondary {
		f, ok := vt.Schema.FieldByID(si.FieldID)
		if ok {
			secondary = append(secondary, f.Name)
		}
	}
	return pk.Name, secondary, nil
}

// VertexTypeNames lists the graph's vertex types.
func (g *Graph) VertexTypeNames(c *fabric.Ctx) ([]string, error) {
	tx := g.store.farm.CreateReadTransaction(c)
	prefix := vtypePrefix(g.tenant, g.name)
	var names []string
	err := g.store.catScanPrefix(tx, prefix, func(key string, _ []byte) bool {
		names = append(names, key[len(prefix):])
		return true
	})
	return names, err
}

// EdgeTypeNames lists the graph's edge types.
func (g *Graph) EdgeTypeNames(c *fabric.Ctx) ([]string, error) {
	tx := g.store.farm.CreateReadTransaction(c)
	prefix := etypePrefix(g.tenant, g.name)
	var names []string
	err := g.store.catScanPrefix(tx, prefix, func(key string, _ []byte) bool {
		names = append(names, key[len(prefix):])
		return true
	})
	return names, err
}

// CreateVertexType declares a vertex type: its Bond schema, which attribute
// is the primary key (unique, non-null, indexed by a sorted primary index),
// and optional secondary-indexed attributes (no uniqueness or null
// constraints; §3).
func (g *Graph) CreateVertexType(c *fabric.Ctx, name string, schema *bond.Schema, pkField string, secondaryFields ...string) error {
	pk, ok := schema.FieldByName(pkField)
	if !ok {
		return fmt.Errorf("%w: primary key field %q not in schema", ErrBadSchema, pkField)
	}
	var secIDs []uint16
	for _, sf := range secondaryFields {
		f, ok := schema.FieldByName(sf)
		if !ok {
			return fmt.Errorf("%w: secondary index field %q not in schema", ErrBadSchema, sf)
		}
		secIDs = append(secIDs, f.ID)
	}
	key := vtypeKey(g.tenant, g.name, name)
	gkey := graphKey(g.tenant, g.name)
	err := farm.RunTransaction(c, g.store.farm, func(tx *farm.Tx) error {
		graw, exists, err := g.store.catGet(tx, gkey)
		if err != nil {
			return err
		}
		if !exists {
			return fmt.Errorf("%w: graph %q", ErrNotFound, g.name)
		}
		gm, err := decodeGraphMeta(graw)
		if err != nil {
			return err
		}
		if gm.State != GraphActive {
			return ErrGraphDeleting
		}
		if _, exists, err := g.store.catGet(tx, key); err != nil {
			return err
		} else if exists {
			return fmt.Errorf("%w: vertex type %q", ErrExists, name)
		}
		primary, err := farm.CreateBTree(tx, farm.NilAddr)
		if err != nil {
			return err
		}
		m := vertexTypeMeta{
			ID:      gm.NextTypeID,
			Name:    name,
			Schema:  schema,
			PKField: pk.ID,
			Primary: primary.Desc(),
		}
		for _, fid := range secIDs {
			st, err := farm.CreateBTree(tx, farm.NilAddr)
			if err != nil {
				return err
			}
			m.Secondary = append(m.Secondary, secondaryMeta{FieldID: fid, Tree: st.Desc()})
		}
		gm.NextTypeID++
		if err := g.store.catPut(tx, gkey, gm.encode()); err != nil {
			return err
		}
		return g.store.catPut(tx, key, m.encode())
	})
	if err == nil {
		g.store.invalidateProxy(gkey)
		g.store.invalidateProxy(key)
		g.store.invalidateTypeDir(g.tenant, g.name)
	}
	return err
}

// CreateEdgeType declares an edge type with an optional data schema.
func (g *Graph) CreateEdgeType(c *fabric.Ctx, name string, schema *bond.Schema) error {
	key := etypeKey(g.tenant, g.name, name)
	gkey := graphKey(g.tenant, g.name)
	err := farm.RunTransaction(c, g.store.farm, func(tx *farm.Tx) error {
		graw, exists, err := g.store.catGet(tx, gkey)
		if err != nil {
			return err
		}
		if !exists {
			return fmt.Errorf("%w: graph %q", ErrNotFound, g.name)
		}
		gm, err := decodeGraphMeta(graw)
		if err != nil {
			return err
		}
		if gm.State != GraphActive {
			return ErrGraphDeleting
		}
		if _, exists, err := g.store.catGet(tx, key); err != nil {
			return err
		} else if exists {
			return fmt.Errorf("%w: edge type %q", ErrExists, name)
		}
		m := edgeTypeMeta{ID: gm.NextTypeID, Name: name, Schema: schema}
		gm.NextTypeID++
		if err := g.store.catPut(tx, gkey, gm.encode()); err != nil {
			return err
		}
		return g.store.catPut(tx, key, m.encode())
	})
	if err == nil {
		g.store.invalidateProxy(gkey)
		g.store.invalidateProxy(key)
		g.store.invalidateTypeDir(g.tenant, g.name)
	}
	return err
}

// SetGraphState transitions the graph's lifecycle state (used by the
// asynchronous DeleteGraph workflow, §3.3).
func (s *Store) SetGraphState(c *fabric.Ctx, tenant, graph string, state GraphState) error {
	gkey := graphKey(tenant, graph)
	err := farm.RunTransaction(c, s.farm, func(tx *farm.Tx) error {
		raw, exists, err := s.catGet(tx, gkey)
		if err != nil {
			return err
		}
		if !exists {
			return fmt.Errorf("%w: graph %q", ErrNotFound, graph)
		}
		gm, err := decodeGraphMeta(raw)
		if err != nil {
			return err
		}
		gm.State = state
		return s.catPut(tx, gkey, gm.encode())
	})
	if err == nil {
		s.invalidateProxy(gkey)
	}
	return err
}

// GraphNames lists graphs under a tenant.
func (s *Store) GraphNames(c *fabric.Ctx, tenant string) ([]string, error) {
	tx := s.farm.CreateReadTransaction(c)
	prefix := catGraph + tenant + "/"
	var names []string
	err := s.catScanPrefix(tx, prefix, func(key string, _ []byte) bool {
		names = append(names, key[len(prefix):])
		return true
	})
	return names, err
}

// DropVertexTypeTrees frees a vertex type's primary and secondary index
// B-trees (DeleteType workflow: "when the primary index is deleted, we
// delete the vertices at the same time" — vertices are drained first here,
// then the trees are dismantled in batches).
func (s *Store) DropVertexTypeTrees(c *fabric.Ctx, tenant, graph, name string) error {
	tx := s.farm.CreateReadTransaction(c)
	raw, ok, err := s.catGet(tx, vtypeKey(tenant, graph, name))
	if err != nil || !ok {
		return err
	}
	m, err := decodeVertexTypeMeta(raw)
	if err != nil {
		return err
	}
	if err := farm.OpenBTree(s.farm, m.Primary).Drop(c, 64); err != nil {
		return err
	}
	for _, si := range m.Secondary {
		if err := farm.OpenBTree(s.farm, si.Tree).Drop(c, 64); err != nil {
			return err
		}
	}
	return nil
}

// DropGraphTrees frees the graph's global edge B-trees.
func (s *Store) DropGraphTrees(c *fabric.Ctx, tenant, graph string) error {
	tx := s.farm.CreateReadTransaction(c)
	raw, ok, err := s.catGet(tx, graphKey(tenant, graph))
	if err != nil || !ok {
		return err
	}
	gm, err := decodeGraphMeta(raw)
	if err != nil {
		return err
	}
	if err := farm.OpenBTree(s.farm, gm.OutTree).Drop(c, 64); err != nil {
		return err
	}
	return farm.OpenBTree(s.farm, gm.InTree).Drop(c, 64)
}

// DropGraphEntry removes the graph's catalog row once its resources are
// gone (the final step of the DeleteGraph workflow).
func (s *Store) DropGraphEntry(c *fabric.Ctx, tenant, graph string) error {
	return farm.RunTransaction(c, s.farm, func(tx *farm.Tx) error {
		return s.catDelete(tx, graphKey(tenant, graph))
	})
}

// DropVertexTypeEntry removes a vertex type's catalog row (end of
// DeleteType workflow).
func (s *Store) DropVertexTypeEntry(c *fabric.Ctx, tenant, graph, name string) error {
	return farm.RunTransaction(c, s.farm, func(tx *farm.Tx) error {
		return s.catDelete(tx, vtypeKey(tenant, graph, name))
	})
}

// DropEdgeTypeEntry removes an edge type's catalog row.
func (s *Store) DropEdgeTypeEntry(c *fabric.Ctx, tenant, graph, name string) error {
	return farm.RunTransaction(c, s.farm, func(tx *farm.Tx) error {
		return s.catDelete(tx, etypeKey(tenant, graph, name))
	})
}
