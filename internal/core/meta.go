package core

import (
	"encoding/binary"
	"fmt"

	"a1/internal/bond"
	"a1/internal/farm"
)

// Metadata records stored as catalog values, serialized with Bond so that
// the catalog — like everything else — holds schematized data.

// GraphState tracks the asynchronous deletion workflow (paper §3.3).
type GraphState uint8

const (
	// GraphActive is the normal serving state.
	GraphActive GraphState = iota
	// GraphDeleting marks a graph whose resources are being torn down by
	// background tasks; the data plane rejects new operations.
	GraphDeleting
)

// tenantMeta is the catalog value for a tenant.
type tenantMeta struct {
	Name string
}

// graphMeta is the catalog value for a graph.
type graphMeta struct {
	Name       string
	State      GraphState
	NextTypeID uint32
	OutTree    farm.Ptr // global out-edge B-tree ⟨src,etype,dst⟩→data ptr
	InTree     farm.Ptr // global in-edge B-tree ⟨dst,etype,src⟩→data ptr
}

// secondaryMeta describes one secondary index of a vertex type.
type secondaryMeta struct {
	FieldID uint16
	Tree    farm.Ptr
}

// vertexTypeMeta is the catalog value for a vertex type.
type vertexTypeMeta struct {
	ID        uint32
	Name      string
	Schema    *bond.Schema
	PKField   uint16
	Primary   farm.Ptr // primary index B-tree descriptor
	Secondary []secondaryMeta
}

// edgeTypeMeta is the catalog value for an edge type.
type edgeTypeMeta struct {
	ID     uint32
	Name   string
	Schema *bond.Schema // nil when edges of this type carry no data
}

func ptrToBlob(p farm.Ptr) bond.Value {
	var b [12]byte
	binary.LittleEndian.PutUint64(b[:], uint64(p.Addr))
	binary.LittleEndian.PutUint32(b[8:], p.Size)
	return bond.Blob(b[:])
}

func blobToPtr(v bond.Value) farm.Ptr {
	b := v.AsBlob()
	if len(b) < 12 {
		return farm.NilPtr
	}
	return farm.Ptr{
		Addr: farm.Addr(binary.LittleEndian.Uint64(b)),
		Size: binary.LittleEndian.Uint32(b[8:]),
	}
}

func (m *tenantMeta) encode() []byte {
	return bond.Marshal(bond.Struct(bond.FV(0, bond.String(m.Name))))
}

func decodeTenantMeta(raw []byte) (*tenantMeta, error) {
	v, err := bond.Unmarshal(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: tenant: %v", ErrCatalogCorrupt, err)
	}
	name, _ := v.Field(0)
	return &tenantMeta{Name: name.AsString()}, nil
}

func (m *graphMeta) encode() []byte {
	return bond.Marshal(bond.Struct(
		bond.FV(0, bond.String(m.Name)),
		bond.FV(1, bond.UInt64(uint64(m.State))),
		bond.FV(2, bond.UInt64(uint64(m.NextTypeID))),
		bond.FV(3, ptrToBlob(m.OutTree)),
		bond.FV(4, ptrToBlob(m.InTree)),
	))
}

func decodeGraphMeta(raw []byte) (*graphMeta, error) {
	v, err := bond.Unmarshal(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: graph: %v", ErrCatalogCorrupt, err)
	}
	name, _ := v.Field(0)
	state, _ := v.Field(1)
	next, _ := v.Field(2)
	out, _ := v.Field(3)
	in, _ := v.Field(4)
	return &graphMeta{
		Name:       name.AsString(),
		State:      GraphState(state.AsUint()),
		NextTypeID: uint32(next.AsUint()),
		OutTree:    blobToPtr(out),
		InTree:     blobToPtr(in),
	}, nil
}

func (m *vertexTypeMeta) encode() []byte {
	sec := make([]bond.Value, 0, len(m.Secondary))
	for _, si := range m.Secondary {
		sec = append(sec, bond.Struct(
			bond.FV(0, bond.UInt64(uint64(si.FieldID))),
			bond.FV(1, ptrToBlob(si.Tree)),
		))
	}
	return bond.Marshal(bond.Struct(
		bond.FV(0, bond.UInt64(uint64(m.ID))),
		bond.FV(1, bond.String(m.Name)),
		bond.FV(2, bond.Blob(bond.EncodeSchema(m.Schema))),
		bond.FV(3, bond.UInt64(uint64(m.PKField))),
		bond.FV(4, ptrToBlob(m.Primary)),
		bond.FV(5, bond.List(sec...)),
	))
}

func decodeVertexTypeMeta(raw []byte) (*vertexTypeMeta, error) {
	v, err := bond.Unmarshal(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: vertex type: %v", ErrCatalogCorrupt, err)
	}
	id, _ := v.Field(0)
	name, _ := v.Field(1)
	schemaBlob, _ := v.Field(2)
	pk, _ := v.Field(3)
	primary, _ := v.Field(4)
	secList, _ := v.Field(5)
	schema, err := bond.DecodeSchema(schemaBlob.AsBlob())
	if err != nil {
		return nil, fmt.Errorf("%w: vertex type schema: %v", ErrCatalogCorrupt, err)
	}
	m := &vertexTypeMeta{
		ID:      uint32(id.AsUint()),
		Name:    name.AsString(),
		Schema:  schema,
		PKField: uint16(pk.AsUint()),
		Primary: blobToPtr(primary),
	}
	for _, sv := range secList.Elems() {
		f, _ := sv.Field(0)
		tree, _ := sv.Field(1)
		m.Secondary = append(m.Secondary, secondaryMeta{
			FieldID: uint16(f.AsUint()),
			Tree:    blobToPtr(tree),
		})
	}
	return m, nil
}

func (m *edgeTypeMeta) encode() []byte {
	fs := []bond.FieldValue{
		bond.FV(0, bond.UInt64(uint64(m.ID))),
		bond.FV(1, bond.String(m.Name)),
	}
	if m.Schema != nil {
		fs = append(fs, bond.FV(2, bond.Blob(bond.EncodeSchema(m.Schema))))
	}
	return bond.Marshal(bond.Struct(fs...))
}

func decodeEdgeTypeMeta(raw []byte) (*edgeTypeMeta, error) {
	v, err := bond.Unmarshal(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: edge type: %v", ErrCatalogCorrupt, err)
	}
	id, _ := v.Field(0)
	name, _ := v.Field(1)
	m := &edgeTypeMeta{ID: uint32(id.AsUint()), Name: name.AsString()}
	if blob, ok := v.Field(2); ok {
		schema, err := bond.DecodeSchema(blob.AsBlob())
		if err != nil {
			return nil, fmt.Errorf("%w: edge type schema: %v", ErrCatalogCorrupt, err)
		}
		m.Schema = schema
	}
	return m, nil
}
