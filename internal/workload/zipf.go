package workload

import (
	"fmt"
	"math/rand"

	"a1/internal/bond"
	"a1/internal/core"
	"a1/internal/fabric"
)

// ZipfGraph is a synthetic workload with heavy value skew — the dataset
// stats-sensitive plans are tested against. Vertices carry two secondary-
// indexed fields: `category`, whose values follow a Zipf distribution (a
// few categories cover most vertices, a long tail covers the rest), and
// `score`, unique per vertex. Edges prefer high-rank destinations
// (hub-and-spoke degree skew). A structural planner always serves
// `{"category": hot, "_orderby": "-score", "_limit": K}` from the category
// index and reads the whole hot set; a cost-based planner sees the heavy
// hitter and walks the score index instead, reading O(K) vertices.
type ZipfGraph struct {
	Vertices   int
	Edges      int
	Categories int
	// Skew is the Zipf s parameter (> 1; larger = heavier head).
	Skew float64
	Seed int64
	// Batch groups creations per transaction during loading.
	Batch int

	Stats Stats
}

// ZipfSchema is the skewed workload's vertex schema.
var ZipfSchema = bond.MustSchema("node",
	bond.FReq(0, "id", bond.TString),
	bond.F(1, "category", bond.TString),
	bond.F(2, "score", bond.TInt64),
)

// NewZipfGraph prepares a generator with the default skew.
func NewZipfGraph(vertices, edges int, seed int64) *ZipfGraph {
	return &ZipfGraph{
		Vertices:   vertices,
		Edges:      edges,
		Categories: 50,
		Skew:       1.3,
		Seed:       seed,
		Batch:      128,
	}
}

// VertexID returns the primary key of vertex i.
func (z *ZipfGraph) VertexID(i int) string { return fmt.Sprintf("z%07d", i) }

// CategoryName returns the category with the given popularity rank
// (rank 0 is the hottest).
func (z *ZipfGraph) CategoryName(rank int) string { return fmt.Sprintf("c%03d", rank) }

// HotCategory is the heaviest category — the heavy hitter the planner
// should recognize.
func (z *ZipfGraph) HotCategory() string { return z.CategoryName(0) }

// TailCategory is a rarely-used category, where the equality index is
// genuinely selective.
func (z *ZipfGraph) TailCategory() string { return z.CategoryName(z.Categories - 1) }

// Load creates the schema (category and score secondary indexed) and data.
func (z *ZipfGraph) Load(c *fabric.Ctx, g *core.Graph) error {
	rng := rand.New(rand.NewSource(z.Seed))
	zipf := rand.NewZipf(rng, z.Skew, 1, uint64(z.Categories-1))
	if err := g.CreateVertexType(c, "node", ZipfSchema, "id", "category", "score"); err != nil {
		return err
	}
	if err := g.CreateEdgeType(c, "link", nil); err != nil {
		return err
	}
	l := &loader{c: c, g: g, batch: z.Batch, verts: map[string]core.VertexPtr{}, stats: &z.Stats}
	ptrs := make([]core.VertexPtr, z.Vertices)
	for i := 0; i < z.Vertices; i++ {
		id := z.VertexID(i)
		val := bond.Struct(
			bond.FV(0, bond.String(id)),
			bond.FV(1, bond.String(z.CategoryName(int(zipf.Uint64())))),
			bond.FV(2, bond.Int64(int64(i))),
		)
		vp, err := l.vertexTyped("node", id, val)
		if err != nil {
			return err
		}
		ptrs[i] = vp
	}
	// Edges with skewed destinations: sources uniform, targets Zipf-ranked
	// so a few hubs absorb most in-edges.
	dstZipf := rand.NewZipf(rng, z.Skew, 1, uint64(z.Vertices-1))
	seen := map[[2]int]bool{}
	for e := 0; e < z.Edges; {
		a := rng.Intn(z.Vertices)
		b := int(dstZipf.Uint64())
		if a == b || seen[[2]int{a, b}] {
			if len(seen) >= z.Vertices*(z.Vertices-1) {
				break
			}
			continue
		}
		seen[[2]int{a, b}] = true
		if err := l.edge(ptrs[a], "link", ptrs[b]); err != nil {
			return err
		}
		e++
	}
	return l.flush()
}

// TopKInCategoryQuery is the stats-sensitive query shape: the top-K scores
// within a category. On the hot category a structural planner reads the
// whole category through the equality index; a cost-based planner walks
// the score index and stops after ≈K reads.
func (z *ZipfGraph) TopKInCategoryQuery(category string, k int) string {
	return fmt.Sprintf(`{"_type": "node", "category": %q, "_orderby": "-score", "_limit": %d, "_select": ["id", "score"]}`, category, k)
}

// TopKNeighborsQuery is the ordered-traversal shape: the top-K scores
// among the out-neighbors of a category's vertices. The frontier arrives
// from a traversal (not an index), so a structural planner materializes
// and sorts it at the coordinator, while a cost-based planner compiles the
// terminal to OrderedTraverse — per-machine score-index walks restricted
// to the frontier, merged top-K at the coordinator.
func (z *ZipfGraph) TopKNeighborsQuery(category string, k int) string {
	return fmt.Sprintf(`{"_type": "node", "category": %q, "_out_edge": {"_type": "link", "_vertex": {"_type": "node", "_orderby": "-score", "_limit": %d, "_select": ["id", "score"]}}}`, category, k)
}

// TopGroupsQuery ranks categories by population — the `_groupby` +
// aggregate `_orderby` top-K-groups shape.
func (z *ZipfGraph) TopGroupsQuery(k int) string {
	return fmt.Sprintf(`{"_type": "node", "_groupby": "category", "_select": ["_count(*)"], "_orderby": "-_count(*)", "_limit": %d}`, k)
}

// ReachableQuery is the recursive shape: everything within max hops of a
// root along link edges. On the hub-skewed topology path counts explode
// combinatorially with depth while the reachable set saturates, so the
// visited-set dedup's saving over naive expansion grows superlinearly
// with max.
func (z *ZipfGraph) ReachableQuery(rootID string, max int) string {
	return fmt.Sprintf(`{"id": %q, "_recurse": {"_type": "link", "_max": %d, "_vertex": {"_select": ["id"]}}}`, rootID, max)
}

// ReachableCountQuery is ReachableQuery reduced to a `_count(*)` — the
// cheapest way to measure a reachable set's size.
func (z *ZipfGraph) ReachableCountQuery(rootID string, max int) string {
	return fmt.Sprintf(`{"id": %q, "_recurse": {"_type": "link", "_max": %d, "_vertex": {"_select": ["_count(*)"]}}}`, rootID, max)
}
