// Package workload generates deterministic synthetic datasets shaped like
// the paper's evaluation workloads (§5, §6): a film/entertainment knowledge
// graph with semi-structured `entity` vertices (every entity type shares
// one vertex type whose attributes live in a string map — the paper's
// production choice), strongly-typed data-less edges, heavy degree skew,
// and the specific fan-outs behind queries Q1–Q4 (Spielberg's 49 films and
// 1639 collaborating actors, the Batman character's performances, Tom
// Hanks's co-star network). It also provides the uniform random graph used
// for the Figure 14 scalability experiment.
package workload

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"a1/internal/bond"
	"a1/internal/core"
	"a1/internal/fabric"
	"a1/internal/farm"
)

// EntitySchema is the knowledge graph's single vertex schema: a unique id,
// a name list, a popularity score, and the semi-structured attribute map
// (paper §5).
var EntitySchema = bond.MustSchema("entity",
	bond.FReq(0, "id", bond.TString),
	bond.F(1, "name", bond.TListOf(bond.TString)),
	bond.F(2, "popularity", bond.TDouble),
	bond.F(3, "str_str_map", bond.TMapOf(bond.TString, bond.TString)),
)

// EdgeTypes are the knowledge graph's strongly-typed, data-less edges
// (paper Table 2).
var EdgeTypes = []string{
	"director.film",
	"film.director",
	"film.actor",
	"actor.film",
	"film.genre",
	"character.film",
	"film.performance",
	"performance.actor",
}

// Params sizes the generated knowledge graph.
type Params struct {
	Seed int64

	// Spielberg subgraph (Q1): one director with SpielbergFilms films,
	// each casting ActorsPerFilm actors drawn from a pool of ActorPool, so
	// the distinct second-hop count lands near the paper's 1639.
	SpielbergFilms int
	ActorsPerFilm  int
	ActorPool      int

	// Batman subgraph (Q2): films connected to the character, each with
	// PerformancesPerFilm performance vertices of which exactly one plays
	// "Batman".
	BatmanFilms         int
	PerformancesPerFilm int

	// Hanks subgraph (Q3/Q4): Tom Hanks stars in HanksFilms films; every
	// actor additionally appears in FilmsPerActor background films so the
	// 3-hop Q4 explosion materializes. BackgroundCast sizes those films'
	// casts (small casts → more distinct films in Q4's final hop; 0 =
	// ActorsPerFilm).
	HanksFilms     int
	FilmsPerActor  int
	BackgroundCast int

	// Genres for the Q3 star pattern.
	Genres []string

	// PayloadPadding pads the attribute map so the average vertex payload
	// approaches the paper's 220 bytes.
	PayloadPadding int

	// BatchSize groups creations per transaction during loading.
	BatchSize int
}

// TestParams returns a small graph for unit tests (hundreds of vertices).
func TestParams() Params {
	return Params{
		Seed:                7,
		SpielbergFilms:      8,
		ActorsPerFilm:       6,
		ActorPool:           60,
		BatmanFilms:         3,
		PerformancesPerFilm: 5,
		HanksFilms:          6,
		FilmsPerActor:       2,
		Genres:              []string{"action", "war", "comedy", "drama"},
		PayloadPadding:      64,
		BatchSize:           64,
	}
}

// PaperParams returns fan-outs calibrated to the paper's reported numbers:
// Q1 touches 49 films and ~1639 distinct actors over ~1785 edges.
func PaperParams() Params {
	return Params{
		Seed:                7,
		SpielbergFilms:      49,
		ActorsPerFilm:       36,
		ActorPool:           11000,
		BatmanFilms:         9,
		PerformancesPerFilm: 20,
		HanksFilms:          55,
		FilmsPerActor:       12,
		BackgroundCast:      4,
		Genres:              []string{"action", "war", "comedy", "drama", "scifi"},
		PayloadPadding:      96,
		BatchSize:           128,
	}
}

// Stats reports what was generated.
type Stats struct {
	Vertices int
	Edges    int
}

// FilmKG loads the knowledge graph into an A1 graph.
type FilmKG struct {
	P     Params
	Stats Stats

	rng *rand.Rand

	// Well-known entity ids used by the paper's queries.
	SpielbergID string
	HanksID     string
	BatmanID    string
}

// NewFilmKG prepares a generator.
func NewFilmKG(p Params) *FilmKG {
	return &FilmKG{
		P:           p,
		rng:         rand.New(rand.NewSource(p.Seed)),
		SpielbergID: "steven.spielberg",
		HanksID:     "tom.hanks",
		BatmanID:    "character.batman",
	}
}

// entity builds an entity payload of roughly the paper's 220-byte average.
func (w *FilmKG) entity(id, kind string, names ...string) bond.Value {
	return w.entityAttrs(id, map[string]string{
		"kind": kind,
		"pad":  strings.Repeat("x", w.P.PayloadPadding),
	}, names...)
}

// filmEntity adds the release-year attribute result-shaping queries order
// and aggregate on ("newest Spielberg films", "films per decade"). The year
// is hashed from the id rather than drawn from the generator's RNG so the
// rest of the graph (placement, casts, popularity) is byte-identical to a
// generator without it.
func (w *FilmKG) filmEntity(id string, names ...string) bond.Value {
	h := fnv.New32a()
	h.Write([]byte(id))
	return w.entityAttrs(id, map[string]string{
		"kind": "film",
		"year": fmt.Sprintf("%d", 1960+h.Sum32()%60),
		"pad":  strings.Repeat("x", w.P.PayloadPadding),
	}, names...)
}

func (w *FilmKG) entityAttrs(id string, attrs map[string]string, names ...string) bond.Value {
	nameVals := make([]bond.Value, 0, len(names))
	for _, n := range names {
		nameVals = append(nameVals, bond.String(n))
	}
	return bond.Struct(
		bond.FV(0, bond.String(id)),
		bond.FV(1, bond.List(nameVals...)),
		bond.FV(2, bond.Double(w.rng.Float64()*100)),
		bond.FV(3, bond.StringMap(attrs)),
	)
}

// performanceEntity carries the character attribute Q2 filters on.
func (w *FilmKG) performanceEntity(id, character string) bond.Value {
	attrs := map[string]string{
		"kind":      "performance",
		"character": character,
		"pad":       strings.Repeat("x", w.P.PayloadPadding/2),
	}
	return bond.Struct(
		bond.FV(0, bond.String(id)),
		bond.FV(1, bond.List(bond.String(id))),
		bond.FV(2, bond.Double(w.rng.Float64()*10)),
		bond.FV(3, bond.StringMap(attrs)),
	)
}

// loader batches vertex/edge creation into transactions.
type loader struct {
	c     *fabric.Ctx
	g     *core.Graph
	batch int

	tx    *farm.Tx
	inTx  int
	verts map[string]core.VertexPtr
	stats *Stats
}

func (l *loader) begin() {
	if l.tx == nil {
		l.tx = l.g.Store().Farm().CreateTransaction(l.c)
	}
}

func (l *loader) flush() error {
	if l.tx == nil {
		return nil
	}
	err := l.tx.Commit()
	l.tx = nil
	l.inTx = 0
	return err
}

func (l *loader) maybeFlush() error {
	l.inTx++
	if l.inTx >= l.batch {
		return l.flush()
	}
	return nil
}

func (l *loader) vertex(id string, val bond.Value) (core.VertexPtr, error) {
	return l.vertexTyped("entity", id, val)
}

// vertexTyped creates a vertex of an arbitrary type (generators outside
// the film knowledge graph bring their own schemas).
func (l *loader) vertexTyped(typ, id string, val bond.Value) (core.VertexPtr, error) {
	if vp, ok := l.verts[id]; ok {
		return vp, nil
	}
	l.begin()
	vp, err := l.g.CreateVertex(l.tx, typ, val)
	if err != nil {
		return core.VertexPtr{}, fmt.Errorf("vertex %q: %w", id, err)
	}
	l.verts[id] = vp
	l.stats.Vertices++
	return vp, l.maybeFlush()
}

func (l *loader) edge(src core.VertexPtr, etype string, dst core.VertexPtr) error {
	l.begin()
	if err := l.g.CreateEdge(l.tx, src, etype, dst, bond.Null); err != nil {
		return fmt.Errorf("edge %s: %w", etype, err)
	}
	l.stats.Edges++
	return l.maybeFlush()
}

// Load creates the schema and data. The graph must be freshly created.
func (w *FilmKG) Load(c *fabric.Ctx, g *core.Graph) error {
	if err := g.CreateVertexType(c, "entity", EntitySchema, "id"); err != nil {
		return err
	}
	for _, et := range EdgeTypes {
		if err := g.CreateEdgeType(c, et, nil); err != nil {
			return err
		}
	}
	l := &loader{c: c, g: g, batch: w.P.BatchSize, verts: map[string]core.VertexPtr{}, stats: &w.Stats}
	if l.batch <= 0 {
		l.batch = 64
	}

	// Genres.
	genrePtr := map[string]core.VertexPtr{}
	for _, genre := range w.P.Genres {
		vp, err := l.vertex(genre, w.entity(genre, "genre", genre))
		if err != nil {
			return err
		}
		genrePtr[genre] = vp
	}

	// Actor pool.
	actorIDs := make([]string, w.P.ActorPool)
	actorPtrs := make([]core.VertexPtr, w.P.ActorPool)
	for i := range actorIDs {
		id := fmt.Sprintf("actor.%05d", i)
		actorIDs[i] = id
		vp, err := l.vertex(id, w.entity(id, "actor", "Actor "+id))
		if err != nil {
			return err
		}
		actorPtrs[i] = vp
	}
	hanks, err := l.vertex(w.HanksID, w.entity(w.HanksID, "actor", "Tom Hanks", "Thomas Hanks"))
	if err != nil {
		return err
	}

	spielberg, err := l.vertex(w.SpielbergID, w.entity(w.SpielbergID, "director", "Steven Spielberg"))
	if err != nil {
		return err
	}

	addFilm := func(filmID string, director core.VertexPtr, cast []core.VertexPtr, genre string) (core.VertexPtr, error) {
		film, err := l.vertex(filmID, w.filmEntity(filmID, "Film "+filmID))
		if err != nil {
			return core.VertexPtr{}, err
		}
		if !director.IsNil() {
			if err := l.edge(director, "director.film", film); err != nil {
				return core.VertexPtr{}, err
			}
			if err := l.edge(film, "film.director", director); err != nil {
				return core.VertexPtr{}, err
			}
		}
		if genre != "" {
			if err := l.edge(film, "film.genre", genrePtr[genre]); err != nil {
				return core.VertexPtr{}, err
			}
		}
		for _, a := range cast {
			if err := l.edge(film, "film.actor", a); err != nil {
				return core.VertexPtr{}, err
			}
			if err := l.edge(a, "actor.film", film); err != nil {
				return core.VertexPtr{}, err
			}
		}
		return film, nil
	}

	// sampleCast draws k distinct actors from the pool.
	sampleCast := func(k int) []core.VertexPtr {
		seen := map[int]bool{}
		cast := make([]core.VertexPtr, 0, k)
		for len(cast) < k && len(seen) < w.P.ActorPool {
			i := w.rng.Intn(w.P.ActorPool)
			if seen[i] {
				continue
			}
			seen[i] = true
			cast = append(cast, actorPtrs[i])
		}
		return cast
	}

	// Spielberg's films (Q1). A couple of them star Tom Hanks and carry
	// the war/action genres so the Q3 star pattern has real answers.
	for i := 0; i < w.P.SpielbergFilms; i++ {
		filmID := fmt.Sprintf("film.spielberg.%03d", i)
		cast := sampleCast(w.P.ActorsPerFilm)
		genre := w.P.Genres[w.rng.Intn(len(w.P.Genres))]
		if i < 2 {
			genre = "war" // "Saving Private Ryan"-shaped
		}
		film, err := addFilm(filmID, spielberg, cast, genre)
		if err != nil {
			return err
		}
		if i < 3 {
			if err := l.edge(film, "film.actor", hanks); err != nil {
				return err
			}
			if err := l.edge(hanks, "actor.film", film); err != nil {
				return err
			}
		}
	}

	// Batman subgraph (Q2): character → films → performances → actors.
	batman, err := l.vertex(w.BatmanID, w.entity(w.BatmanID, "character", "Batman"))
	if err != nil {
		return err
	}
	characters := []string{"Batman", "Joker", "Alfred", "Robin", "Gordon", "Catwoman", "Bane", "Riddler"}
	for i := 0; i < w.P.BatmanFilms; i++ {
		filmID := fmt.Sprintf("film.batman.%03d", i)
		film, err := addFilm(filmID, core.VertexPtr{}, nil, "action")
		if err != nil {
			return err
		}
		if err := l.edge(batman, "character.film", film); err != nil {
			return err
		}
		for p := 0; p < w.P.PerformancesPerFilm; p++ {
			perfID := fmt.Sprintf("perf.batman.%03d.%02d", i, p)
			character := characters[p%len(characters)]
			if p == 0 {
				character = "Batman"
			}
			perf, err := l.vertex(perfID, w.performanceEntity(perfID, character))
			if err != nil {
				return err
			}
			if err := l.edge(film, "film.performance", perf); err != nil {
				return err
			}
			if err := l.edge(perf, "performance.actor", actorPtrs[w.rng.Intn(w.P.ActorPool)]); err != nil {
				return err
			}
		}
	}

	// Hanks films (Q3/Q4) and background filmography so co-stars have
	// films of their own.
	for i := 0; i < w.P.HanksFilms; i++ {
		filmID := fmt.Sprintf("film.hanks.%03d", i)
		cast := append(sampleCast(w.P.ActorsPerFilm-1), hanks)
		if _, err := addFilm(filmID, core.VertexPtr{}, cast, w.P.Genres[w.rng.Intn(len(w.P.Genres))]); err != nil {
			return err
		}
	}
	bgCast := w.P.BackgroundCast
	if bgCast <= 0 {
		bgCast = w.P.ActorsPerFilm
	}
	for f := 0; f < w.P.FilmsPerActor; f++ {
		for chunk := 0; chunk < w.P.ActorPool; chunk += bgCast {
			filmID := fmt.Sprintf("film.background.%02d.%05d", f, chunk)
			end := chunk + bgCast
			if end > w.P.ActorPool {
				end = w.P.ActorPool
			}
			// Shifted slices give each actor FilmsPerActor distinct films
			// with varying co-stars.
			cast := make([]core.VertexPtr, 0, end-chunk)
			for i := chunk; i < end; i++ {
				cast = append(cast, actorPtrs[(i+f*13)%w.P.ActorPool])
			}
			if _, err := addFilm(filmID, core.VertexPtr{}, cast, ""); err != nil {
				return err
			}
		}
	}
	return l.flush()
}
