package workload

import (
	"fmt"
	"math/rand"

	"a1/internal/bond"
	"a1/internal/core"
	"a1/internal/fabric"
)

// UniformGraph is the Figure 14 scalability dataset: N vertices and M
// random edges distributed uniformly across the cluster, queried with
// 2-hop traversals from random vertices. (The paper used 23M vertices and
// 63M edges; the simulation scales N down while preserving the fan-out
// that drives per-query work.)
type UniformGraph struct {
	Vertices int
	Edges    int
	Seed     int64
	Batch    int

	Stats Stats
	rng   *rand.Rand
}

// NewUniformGraph prepares a generator.
func NewUniformGraph(vertices, edges int, seed int64) *UniformGraph {
	return &UniformGraph{Vertices: vertices, Edges: edges, Seed: seed, Batch: 128}
}

// VertexID returns the primary key of vertex i.
func (u *UniformGraph) VertexID(i int) string { return fmt.Sprintf("v%07d", i) }

// RandomVertexID returns a uniformly random vertex id for query starts.
func (u *UniformGraph) RandomVertexID(r *rand.Rand) string {
	return u.VertexID(r.Intn(u.Vertices))
}

// Load creates the schema and data.
func (u *UniformGraph) Load(c *fabric.Ctx, g *core.Graph) error {
	u.rng = rand.New(rand.NewSource(u.Seed))
	if err := g.CreateVertexType(c, "entity", EntitySchema, "id"); err != nil {
		return err
	}
	if err := g.CreateEdgeType(c, "link", nil); err != nil {
		return err
	}
	l := &loader{c: c, g: g, batch: u.Batch, verts: map[string]core.VertexPtr{}, stats: &u.Stats}
	ptrs := make([]core.VertexPtr, u.Vertices)
	for i := 0; i < u.Vertices; i++ {
		id := u.VertexID(i)
		val := bond.Struct(
			bond.FV(0, bond.String(id)),
			bond.FV(1, bond.List(bond.String("Vertex "+id))),
			bond.FV(2, bond.Double(u.rng.Float64())),
			bond.FV(3, bond.StringMap(map[string]string{"kind": "node"})),
		)
		vp, err := l.vertex(id, val)
		if err != nil {
			return err
		}
		ptrs[i] = vp
	}
	seen := map[[2]int]bool{}
	for e := 0; e < u.Edges; {
		a, b := u.rng.Intn(u.Vertices), u.rng.Intn(u.Vertices)
		if a == b || seen[[2]int{a, b}] {
			// Degenerate pair; resample (dense small graphs may loop a
			// few times, which is fine at test scale).
			if len(seen) >= u.Vertices*(u.Vertices-1) {
				break
			}
			continue
		}
		seen[[2]int{a, b}] = true
		if err := l.edge(ptrs[a], "link", ptrs[b]); err != nil {
			return err
		}
		e++
	}
	return l.flush()
}

// TwoHopQuery returns the A1QL document for the Figure 14 workload: a
// 2-hop traversal counting the distinct second-hop neighborhood.
func (u *UniformGraph) TwoHopQuery(startID string) []byte {
	return []byte(fmt.Sprintf(`{
		"id": %q,
		"_out_edge": {"_type": "link", "_vertex": {
			"_out_edge": {"_type": "link", "_vertex": {
				"_select": ["_count(*)"]
			}}
		}}
	}`, startID))
}
