package workload

import (
	"testing"

	"a1/internal/bond"
	"a1/internal/core"
	"a1/internal/fabric"
	"a1/internal/farm"
)

func TestZipfGraphSkew(t *testing.T) {
	fab := fabric.New(fabric.DefaultConfig(8, fabric.Direct), nil)
	f := farm.Open(fab, farm.Config{RegionSize: 16 << 20})
	c := fab.NewCtx(0, nil)
	s, err := core.Open(c, f, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.CreateTenant(c, "t")
	s.CreateGraph(c, "t", "z")
	g, err := s.OpenGraph(c, "t", "z")
	if err != nil {
		t.Fatal(err)
	}
	z := NewZipfGraph(1000, 2000, 1)
	if err := z.Load(c, g); err != nil {
		t.Fatal(err)
	}
	if z.Stats.Vertices != 1000 || z.Stats.Edges != 2000 {
		t.Fatalf("stats = %+v, want 1000/2000", z.Stats)
	}
	tx := f.CreateReadTransaction(c)
	// The hot category must dominate: with s=1.3 over 50 categories it
	// should cover well over a tenth of the vertices, far more than the
	// uniform share (2%).
	hot := 0
	err = g.IndexScan(tx, "node", "category", bond.String(z.HotCategory()), func(core.VertexPtr) bool {
		hot++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if hot < 200 {
		t.Fatalf("hot category has %d vertices, want skewed (≥200 of 1000)", hot)
	}
	tail := 0
	err = g.IndexScan(tx, "node", "category", bond.String(z.TailCategory()), func(core.VertexPtr) bool {
		tail++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if tail >= hot/10 {
		t.Fatalf("tail category has %d vertices vs hot %d, want ≪", tail, hot)
	}
	// The score index serves ordered scans.
	n, err := g.CountVertices(c, "node")
	if err != nil || n != 1000 {
		t.Fatalf("CountVertices = %d, %v", n, err)
	}
}
