package workload

import (
	"testing"

	"a1/internal/bond"
	"a1/internal/core"
	"a1/internal/fabric"
	"a1/internal/farm"
)

func loadKG(t *testing.T, p Params) (*FilmKG, *core.Graph, *fabric.Ctx, *farm.Farm) {
	t.Helper()
	fab := fabric.New(fabric.DefaultConfig(8, fabric.Direct), nil)
	f := farm.Open(fab, farm.Config{RegionSize: 16 << 20})
	c := fab.NewCtx(0, nil)
	s, err := core.Open(c, f, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.CreateTenant(c, "bing")
	s.CreateGraph(c, "bing", "kg")
	g, err := s.OpenGraph(c, "bing", "kg")
	if err != nil {
		t.Fatal(err)
	}
	kg := NewFilmKG(p)
	if err := kg.Load(c, g); err != nil {
		t.Fatal(err)
	}
	return kg, g, c, f
}

func TestFilmKGShape(t *testing.T) {
	p := TestParams()
	kg, g, c, f := loadKG(t, p)
	if kg.Stats.Vertices == 0 || kg.Stats.Edges == 0 {
		t.Fatalf("empty KG: %+v", kg.Stats)
	}
	tx := f.CreateReadTransaction(c)
	// The paper's anchor entities exist.
	for _, id := range []string{kg.SpielbergID, kg.HanksID, kg.BatmanID, "war"} {
		if _, ok, err := g.LookupVertex(tx, "entity", bond.String(id)); err != nil || !ok {
			t.Errorf("anchor %q missing (%v)", id, err)
		}
	}
	// Spielberg's out-degree matches the parameterization.
	sp, _, _ := g.LookupVertex(tx, "entity", bond.String(kg.SpielbergID))
	films := 0
	g.EnumerateEdges(tx, sp, core.DirOut, "director.film", func(core.HalfEdge) bool {
		films++
		return true
	})
	if films != p.SpielbergFilms {
		t.Errorf("spielberg films = %d, want %d", films, p.SpielbergFilms)
	}
	// Every film.actor edge has a mirror actor.film edge (generator
	// creates both directions).
	film0, _, _ := g.LookupVertex(tx, "entity", bond.String("film.spielberg.000"))
	bad := 0
	g.EnumerateEdges(tx, film0, core.DirOut, "film.actor", func(he core.HalfEdge) bool {
		if _, ok, _ := g.GetEdge(tx, he.Other, "actor.film", film0); !ok {
			bad++
		}
		return true
	})
	if bad != 0 {
		t.Errorf("%d film.actor edges lack the actor.film mirror", bad)
	}
}

func TestFilmKGDeterministic(t *testing.T) {
	kg1, _, _, _ := loadKG(t, TestParams())
	kg2, _, _, _ := loadKG(t, TestParams())
	if kg1.Stats != kg2.Stats {
		t.Errorf("same seed produced different graphs: %+v vs %+v", kg1.Stats, kg2.Stats)
	}
}

func TestUniformGraphShape(t *testing.T) {
	fab := fabric.New(fabric.DefaultConfig(6, fabric.Direct), nil)
	f := farm.Open(fab, farm.Config{RegionSize: 16 << 20})
	c := fab.NewCtx(0, nil)
	s, err := core.Open(c, f, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.CreateTenant(c, "t")
	s.CreateGraph(c, "t", "u")
	g, err := s.OpenGraph(c, "t", "u")
	if err != nil {
		t.Fatal(err)
	}
	u := NewUniformGraph(100, 300, 5)
	if err := u.Load(c, g); err != nil {
		t.Fatal(err)
	}
	if u.Stats.Vertices != 100 || u.Stats.Edges != 300 {
		t.Errorf("stats = %+v", u.Stats)
	}
	n, err := g.CountVertices(c, "entity")
	if err != nil || n != 100 {
		t.Errorf("count = %d, %v", n, err)
	}
	doc := u.TwoHopQuery(u.VertexID(0))
	if len(doc) == 0 {
		t.Error("empty query doc")
	}
}
