// Command a1lint is the multichecker driver for the engine's
// project-specific analyzers (internal/lint): the distributed-correctness
// contracts — stats commit hooks on write paths, deterministic map
// handling in output paths, no machine-local lock spanning a fabric round
// trip, one global lock-acquisition order, batched frontier reads,
// cursors and transactions released on every path, and HTTP-mapped error
// codes — enforced as build failures.
//
// Usage:
//
//	a1lint [-only name,...] [-list] [-json file] [packages]
//
// Packages default to ./... relative to the current directory. Findings
// print as file:line:col: message (analyzer) and make the exit status
// non-zero. -json additionally writes every finding — including
// suppressed ones, marked as such — as a JSON array to the given file
// ("-" for stdout), for CI artifacts and tooling; a clean run writes an
// empty array. Suppress an individual finding with
//
//	//lint:ignore a1/<analyzer> <written justification>
//
// on (or directly above) the offending line; directives without a
// justification, and directives that no longer match anything, are
// themselves findings.
//
// The driver runs standalone; `go vet -vettool` integration needs the
// x/tools unitchecker protocol and is gated on that dependency being
// admitted (the analyzers are written against an API-compatible shim, so
// the switch is mechanical).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"a1/internal/lint"
	"a1/internal/lint/analysis"
	"a1/internal/lint/load"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	verbose := flag.Bool("v", false, "also print suppressed findings with their justifications")
	jsonOut := flag.String("json", "", "write findings (including suppressed) as JSON to this file; \"-\" for stdout")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		names := strings.Split(*only, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		sel, ok := lint.ByName(names)
		if !ok {
			fmt.Fprintf(os.Stderr, "a1lint: unknown analyzer in -only=%s (try -list)\n", *only)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := load.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "a1lint: %v\n", err)
		os.Exit(2)
	}
	// Unused-suppression checking is only sound when every analyzer runs:
	// a directive for a deselected analyzer is not stale.
	checkUnused := len(analyzers) == len(lint.All())
	res, err := analysis.Run(prog, analyzers, checkUnused)
	if err != nil {
		fmt.Fprintf(os.Stderr, "a1lint: %v\n", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	for _, d := range append(res.Diagnostics, res.Problems...) {
		fmt.Printf("%s: %s (%s)\n", relPos(cwd, d), d.Message, d.Analyzer)
	}
	if *verbose {
		for _, d := range res.Suppressed {
			fmt.Printf("%s: suppressed: %s (%s)\n", relPos(cwd, d), d.Message, d.Analyzer)
		}
	}
	// The JSON artifact is written before the exit status is decided so a
	// failing CI run still uploads its findings.
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, cwd, res); err != nil {
			fmt.Fprintf(os.Stderr, "a1lint: writing %s: %v\n", *jsonOut, err)
			os.Exit(2)
		}
	}
	if n := len(res.Diagnostics) + len(res.Problems); n > 0 {
		fmt.Fprintf(os.Stderr, "a1lint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// jsonFinding is one machine-readable finding. Suppressed findings are
// included and flagged, so the artifact records sanctioned sites too.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func writeJSON(path, cwd string, res *analysis.Result) error {
	findings := []jsonFinding{} // non-nil: a clean run is an empty array
	add := func(ds []analysis.Diagnostic, suppressed bool) {
		for _, d := range ds {
			name := d.Pos.Filename
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
			findings = append(findings, jsonFinding{
				File: name, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message, Suppressed: suppressed,
			})
		}
	}
	add(res.Diagnostics, false)
	add(res.Problems, false)
	add(res.Suppressed, true)
	out, err := json.MarshalIndent(findings, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

func relPos(cwd string, d analysis.Diagnostic) string {
	name := d.Pos.Filename
	if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = rel
	}
	return fmt.Sprintf("%s:%d:%d", name, d.Pos.Line, d.Pos.Column)
}
