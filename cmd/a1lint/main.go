// Command a1lint is the multichecker driver for the engine's
// project-specific analyzers (internal/lint): the distributed-correctness
// contracts — stats commit hooks on write paths, deterministic map
// handling in output paths, no machine-local lock spanning a fabric round
// trip, batched frontier reads, and HTTP-mapped error codes — enforced as
// build failures.
//
// Usage:
//
//	a1lint [-only name,...] [-list] [packages]
//
// Packages default to ./... relative to the current directory. Findings
// print as file:line:col: message (analyzer) and make the exit status
// non-zero. Suppress an individual finding with
//
//	//lint:ignore a1/<analyzer> <written justification>
//
// on (or directly above) the offending line; directives without a
// justification, and directives that no longer match anything, are
// themselves findings.
//
// The driver runs standalone; `go vet -vettool` integration needs the
// x/tools unitchecker protocol and is gated on that dependency being
// admitted (the analyzers are written against an API-compatible shim, so
// the switch is mechanical).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"a1/internal/lint"
	"a1/internal/lint/analysis"
	"a1/internal/lint/load"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	verbose := flag.Bool("v", false, "also print suppressed findings with their justifications")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		sel, ok := lint.ByName(strings.Split(*only, ","))
		if !ok {
			fmt.Fprintf(os.Stderr, "a1lint: unknown analyzer in -only=%s (try -list)\n", *only)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := load.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "a1lint: %v\n", err)
		os.Exit(2)
	}
	// Unused-suppression checking is only sound when every analyzer runs:
	// a directive for a deselected analyzer is not stale.
	checkUnused := len(analyzers) == len(lint.All())
	res, err := analysis.Run(prog, analyzers, checkUnused)
	if err != nil {
		fmt.Fprintf(os.Stderr, "a1lint: %v\n", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	for _, d := range append(res.Diagnostics, res.Problems...) {
		fmt.Printf("%s: %s (%s)\n", relPos(cwd, d), d.Message, d.Analyzer)
	}
	if *verbose {
		for _, d := range res.Suppressed {
			fmt.Printf("%s: suppressed: %s (%s)\n", relPos(cwd, d), d.Message, d.Analyzer)
		}
	}
	if n := len(res.Diagnostics) + len(res.Problems); n > 0 {
		fmt.Fprintf(os.Stderr, "a1lint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

func relPos(cwd string, d analysis.Diagnostic) string {
	name := d.Pos.Filename
	if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = rel
	}
	return fmt.Sprintf("%s:%d:%d", name, d.Pos.Line, d.Pos.Column)
}
