// Command a1server exposes an in-process A1 cluster over HTTP — the role
// the frontend tier plays in Figure 4, with JSON-over-TCP standing in for
// the production RPC stack.
//
// Endpoints:
//
//	POST   /query?tenant=bing&graph=kg   body: A1QL JSON         -> result page
//	POST   /query                        body: {"query": <A1QL>, -> result page
//	                                            "params": {...}}    (prepared + bound)
//	POST   /explain                      body: A1QL or envelope   -> plan tree JSON
//	                                     (?format=text for the rendered plan)
//	GET    /fetch?token=...                                      -> next page
//	DELETE /fetch?token=...                                      -> release continuation state
//	GET    /stats                                                -> cluster counters
//	GET    /healthz
//
// Query failures map to protocol statuses: parse, bind, and `_recurse`
// misuse errors are 400, an unmatched root is 404, an expired continuation
// token is 410, a working-set fast-fail is 413, and frontend throttling is
// 429.
//
// Example:
//
//	$ go run ./cmd/a1server &
//	$ curl -s -XPOST 'localhost:8080/query' -d '{"id":"tom.hanks","_select":["id"]}'
//	$ curl -s -XPOST 'localhost:8080/query' -d '{
//	      "query": {"id": "$who", "_select": ["id", "popularity"]},
//	      "params": {"who": "tom.hanks"}}'
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"

	"a1"
	"a1/internal/workload"
)

type server struct {
	db *a1.DB
	g  *a1.Graph
}

type queryResponse struct {
	Count        *int64              `json:"count,omitempty"`
	Rows         []map[string]string `json:"rows,omitempty"`
	Groups       []groupJSON         `json:"groups,omitempty"`
	Continuation string              `json:"continuation,omitempty"`
	Stats        statsJSON           `json:"stats"`
}

type groupJSON struct {
	Key        map[string]string `json:"key"`
	Aggregates map[string]string `json:"aggregates"`
}

type statsJSON struct {
	Hops           int     `json:"hops"`
	VerticesRead   int64   `json:"vertices_read"`
	ObjectsRead    int64   `json:"objects_read"`
	LocalPct       float64 `json:"local_read_pct"`
	ElapsedUS      int64   `json:"elapsed_us"`
	PlanCacheHits  int64   `json:"plan_cache_hits,omitempty"`
	GroupsShipped  int64   `json:"groups_shipped,omitempty"`
	GroupsFiltered int64   `json:"groups_filtered,omitempty"`
	GroupSpills    int64   `json:"group_spills,omitempty"`
}

type errorJSON struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func toResponse(res *a1.Result) queryResponse {
	out := queryResponse{
		Continuation: res.Continuation,
		Stats: statsJSON{
			Hops:           res.Stats.Hops,
			VerticesRead:   res.Stats.VerticesRead,
			ObjectsRead:    res.Stats.ObjectsRead,
			LocalPct:       res.Stats.LocalFrac * 100,
			ElapsedUS:      res.Stats.Elapsed.Microseconds(),
			PlanCacheHits:  res.Stats.PlanCacheHits,
			GroupsShipped:  res.Stats.GroupsShipped,
			GroupsFiltered: res.Stats.GroupsFiltered,
			GroupSpills:    res.Stats.GroupSpills,
		},
	}
	if res.HasCount {
		c := res.Count
		out.Count = &c
	}
	for _, row := range res.Rows {
		m := map[string]string{"_vertex": row.Vertex.Addr.String()}
		for k, v := range row.Values {
			m[k] = v.String()
		}
		out.Rows = append(out.Rows, m)
	}
	for _, gr := range res.Groups {
		g := groupJSON{
			Key:        make(map[string]string, len(gr.Keys)),
			Aggregates: make(map[string]string, len(gr.Aggregates)),
		}
		for k, v := range gr.Keys {
			g.Key[k] = v.String()
		}
		for k, v := range gr.Aggregates {
			g.Aggregates[k] = v.String()
		}
		out.Groups = append(out.Groups, g)
	}
	return out
}

// classifyError maps a query failure to a protocol status and wire code
// instead of a blanket 500.
func classifyError(err error) (status int, code string) {
	if errors.Is(err, a1.ErrThrottled) {
		return http.StatusTooManyRequests, "throttled"
	}
	var qe *a1.QueryError
	if errors.As(err, &qe) {
		switch qe.Code {
		case a1.CodeParse, a1.CodeBadParam, a1.CodeRecurse:
			return http.StatusBadRequest, qe.Code.String()
		case a1.CodeNoStart:
			return http.StatusNotFound, qe.Code.String()
		case a1.CodeBadToken:
			return http.StatusGone, qe.Code.String()
		case a1.CodeWorkingSet:
			return http.StatusRequestEntityTooLarge, qe.Code.String()
		}
		return http.StatusInternalServerError, qe.Code.String()
	}
	// Sentinel fallbacks for errors surfaced outside the engine boundary.
	switch {
	case errors.Is(err, a1.ErrBadToken):
		return http.StatusGone, "bad_token"
	case errors.Is(err, a1.ErrNoStart):
		return http.StatusNotFound, "no_start"
	}
	return http.StatusInternalServerError, "internal"
}

func writeError(w http.ResponseWriter, err error) {
	status, code := classifyError(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorJSON{Error: err.Error(), Code: code})
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST an A1QL document", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	doc, params, err := splitEnvelope(body)
	if err != nil {
		writeError(w, err)
		return
	}
	var res *a1.Result
	var qerr error
	s.db.Run(func(c *a1.Ctx) {
		if params == nil {
			res, qerr = s.db.Query(c, s.g, string(doc))
			return
		}
		var pq *a1.PreparedQuery
		if pq, qerr = s.db.Prepare(c, s.g, string(doc)); qerr != nil {
			return
		}
		res, qerr = pq.Exec(c, params)
	})
	if qerr != nil {
		writeError(w, qerr)
		return
	}
	writeJSON(w, toResponse(res))
}

// splitEnvelope distinguishes a raw A1QL document from the parameterized
// {"query": ..., "params": {...}} form. params == nil means raw. A body
// is an envelope only when it has a "query" key and nothing beyond
// "query"/"params" — a raw document with a predicate on a field named
// "query" plus any other key still routes as raw.
func splitEnvelope(body []byte) (doc []byte, params a1.Params, err error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.UseNumber()
	var probe map[string]json.RawMessage
	if err := dec.Decode(&probe); err != nil {
		return body, nil, nil // not an object: let the engine report the parse error
	}
	if _, ok := probe["query"]; !ok {
		return body, nil, nil
	}
	for k := range probe {
		if k != "query" && k != "params" {
			return body, nil, nil
		}
	}
	doc = probe["query"]
	var docStr string
	if json.Unmarshal(probe["query"], &docStr) == nil {
		doc = []byte(docStr) // "query" given as a string
	}
	params = a1.Params{}
	if praw, ok := probe["params"]; ok {
		pdec := json.NewDecoder(bytes.NewReader(praw))
		pdec.UseNumber()
		var pm map[string]interface{}
		if err := pdec.Decode(&pm); err != nil {
			return nil, nil, &a1.QueryError{Code: a1.CodeParse, Err: fmt.Errorf("bad params object: %w", err)}
		}
		params = a1.Params(pm)
	}
	return doc, params, nil
}

// handleExplain returns the compiled plan for a document without running
// it — the structured PlanTree as JSON, or the rendered text with
// ?format=text. Accepts the same {"query": ..., "params": {...}} envelope
// as /query so a prepared statement's plan reflects its bind values.
func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST an A1QL document", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	doc, params, err := splitEnvelope(body)
	if err != nil {
		writeError(w, err)
		return
	}
	var tree *a1.PlanTree
	var qerr error
	s.db.Run(func(c *a1.Ctx) {
		tree, qerr = s.db.ExplainPlan(c, s.g, string(doc), params)
	})
	if qerr != nil {
		writeError(w, qerr)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, tree.String())
		return
	}
	writeJSON(w, tree)
}

func (s *server) handleFetch(w http.ResponseWriter, r *http.Request) {
	token := r.URL.Query().Get("token")
	if token == "" {
		http.Error(w, "missing token", http.StatusBadRequest)
		return
	}
	if r.Method == http.MethodDelete {
		var qerr error
		s.db.Run(func(c *a1.Ctx) { qerr = s.db.Release(c, token) })
		if qerr != nil {
			writeError(w, qerr)
			return
		}
		writeJSON(w, map[string]string{"released": token})
		return
	}
	var res *a1.Result
	var qerr error
	s.db.Run(func(c *a1.Ctx) {
		res, qerr = s.db.Fetch(c, token)
	})
	if qerr != nil {
		writeError(w, qerr)
		return
	}
	writeJSON(w, toResponse(res))
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	m := &s.db.Fabric().Metrics
	hits, misses := s.db.Engine().PlanCacheStats()
	writeJSON(w, map[string]interface{}{
		"machines":          s.db.Fabric().Machines(),
		"bytes_used":        s.db.UsedBytes(),
		"local_reads":       m.LocalReads.Load(),
		"remote_reads":      m.RemoteReads.Load(),
		"remote_writes":     m.RemoteWrites.Load(),
		"rpcs":              m.RPCs.Load(),
		"plan_cache_hits":   hits,
		"plan_cache_misses": misses,
	})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		machines    = flag.Int("machines", 16, "simulated cluster size")
		scale       = flag.String("scale", "test", "knowledge graph size: test | paper")
		maxInflight = flag.Int("max-inflight", 0, "concurrent requests per frontend before 429 (0 = off)")
	)
	flag.Parse()

	db, err := a1.Open(a1.Options{Machines: *machines, TaskWorkers: 1, MaxInflight: *maxInflight})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	var g *a1.Graph
	db.Run(func(c *a1.Ctx) {
		if err = db.CreateTenant(c, "bing"); err != nil {
			return
		}
		if err = db.CreateGraph(c, "bing", "kg"); err != nil {
			return
		}
		if g, err = db.OpenGraph(c, "bing", "kg"); err != nil {
			return
		}
		params := workload.TestParams()
		if *scale == "paper" {
			params = workload.PaperParams()
		}
		kg := workload.NewFilmKG(params)
		if err = kg.Load(c, g); err != nil {
			return
		}
		fmt.Printf("a1server: loaded %d vertices, %d edges on %d machines\n",
			kg.Stats.Vertices, kg.Stats.Edges, *machines)
	})
	if err != nil {
		log.Fatal(err)
	}

	s := &server{db: db, g: g}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/fetch", s.handleFetch)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	log.Printf("a1server listening on %s", *addr)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
