// Command a1server exposes an in-process A1 cluster over HTTP — the role
// the frontend tier plays in Figure 4, with JSON-over-TCP standing in for
// the production RPC stack.
//
// Endpoints:
//
//	POST /query?tenant=bing&graph=kg   body: A1QL JSON    -> result page
//	GET  /fetch?token=...                                  -> next page
//	GET  /stats                                            -> cluster counters
//	GET  /healthz
//
// Example:
//
//	$ go run ./cmd/a1server &
//	$ curl -s -XPOST 'localhost:8080/query' -d '{"id":"tom.hanks","_select":["id"]}'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"

	"a1"
	"a1/internal/workload"
)

type server struct {
	db *a1.DB
	g  *a1.Graph
}

type queryResponse struct {
	Count        *int64              `json:"count,omitempty"`
	Rows         []map[string]string `json:"rows,omitempty"`
	Continuation string              `json:"continuation,omitempty"`
	Stats        statsJSON           `json:"stats"`
}

type statsJSON struct {
	Hops         int     `json:"hops"`
	VerticesRead int64   `json:"vertices_read"`
	ObjectsRead  int64   `json:"objects_read"`
	LocalPct     float64 `json:"local_read_pct"`
	ElapsedUS    int64   `json:"elapsed_us"`
}

func toResponse(res *a1.Result) queryResponse {
	out := queryResponse{
		Continuation: res.Continuation,
		Stats: statsJSON{
			Hops:         res.Stats.Hops,
			VerticesRead: res.Stats.VerticesRead,
			ObjectsRead:  res.Stats.ObjectsRead,
			LocalPct:     res.Stats.LocalFrac * 100,
			ElapsedUS:    res.Stats.Elapsed.Microseconds(),
		},
	}
	if res.HasCount {
		c := res.Count
		out.Count = &c
	}
	for _, row := range res.Rows {
		m := map[string]string{"_vertex": row.Vertex.Addr.String()}
		for k, v := range row.Values {
			m[k] = v.String()
		}
		out.Rows = append(out.Rows, m)
	}
	return out
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST an A1QL document", http.StatusMethodNotAllowed)
		return
	}
	doc, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var res *a1.Result
	var qerr error
	s.db.Run(func(c *a1.Ctx) {
		res, qerr = s.db.Query(c, s.g, string(doc))
	})
	if qerr != nil {
		http.Error(w, qerr.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, toResponse(res))
}

func (s *server) handleFetch(w http.ResponseWriter, r *http.Request) {
	token := r.URL.Query().Get("token")
	if token == "" {
		http.Error(w, "missing token", http.StatusBadRequest)
		return
	}
	var res *a1.Result
	var qerr error
	s.db.Run(func(c *a1.Ctx) {
		res, qerr = s.db.Fetch(c, token)
	})
	if qerr != nil {
		http.Error(w, qerr.Error(), http.StatusGone)
		return
	}
	writeJSON(w, toResponse(res))
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	m := &s.db.Fabric().Metrics
	writeJSON(w, map[string]interface{}{
		"machines":      s.db.Fabric().Machines(),
		"bytes_used":    s.db.UsedBytes(),
		"local_reads":   m.LocalReads.Load(),
		"remote_reads":  m.RemoteReads.Load(),
		"remote_writes": m.RemoteWrites.Load(),
		"rpcs":          m.RPCs.Load(),
	})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		machines = flag.Int("machines", 16, "simulated cluster size")
		scale    = flag.String("scale", "test", "knowledge graph size: test | paper")
	)
	flag.Parse()

	db, err := a1.Open(a1.Options{Machines: *machines, TaskWorkers: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	var g *a1.Graph
	db.Run(func(c *a1.Ctx) {
		if err = db.CreateTenant(c, "bing"); err != nil {
			return
		}
		if err = db.CreateGraph(c, "bing", "kg"); err != nil {
			return
		}
		if g, err = db.OpenGraph(c, "bing", "kg"); err != nil {
			return
		}
		params := workload.TestParams()
		if *scale == "paper" {
			params = workload.PaperParams()
		}
		kg := workload.NewFilmKG(params)
		if err = kg.Load(c, g); err != nil {
			return
		}
		fmt.Printf("a1server: loaded %d vertices, %d edges on %d machines\n",
			kg.Stats.Vertices, kg.Stats.Edges, *machines)
	})
	if err != nil {
		log.Fatal(err)
	}

	s := &server{db: db, g: g}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/fetch", s.handleFetch)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	log.Printf("a1server listening on %s", *addr)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
