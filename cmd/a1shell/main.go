// Command a1shell is an interactive A1QL shell against an in-process A1
// cluster preloaded with the film knowledge graph. Queries are JSON
// documents; blank lines execute the buffered input, so multi-line
// documents paste naturally.
//
//	$ go run ./cmd/a1shell
//	a1> { "id" : "steven.spielberg",
//	...   "_out_edge" : { "_type" : "director.film",
//	...     "_vertex" : { "_select" : ["_count(*)"] }}}
//	...
//	count: 49   (8 vertices read, 1.2ms, 96% local)
//
// Shell commands: :help :stats :examples :quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"a1"
	"a1/internal/bench"
	"a1/internal/workload"
)

func main() {
	var (
		machines = flag.Int("machines", 16, "simulated cluster size")
		scale    = flag.String("scale", "test", "knowledge graph size: test | paper")
	)
	flag.Parse()

	db, err := a1.Open(a1.Options{Machines: *machines})
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	var g *a1.Graph
	var kg *workload.FilmKG
	db.Run(func(c *a1.Ctx) {
		if err = db.CreateTenant(c, "bing"); err != nil {
			return
		}
		if err = db.CreateGraph(c, "bing", "kg"); err != nil {
			return
		}
		if g, err = db.OpenGraph(c, "bing", "kg"); err != nil {
			return
		}
		params := workload.TestParams()
		if *scale == "paper" {
			params = workload.PaperParams()
		}
		kg = workload.NewFilmKG(params)
		err = kg.Load(c, g)
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("a1shell: %d machines, knowledge graph loaded (%d vertices, %d edges)\n",
		*machines, kg.Stats.Vertices, kg.Stats.Edges)
	fmt.Println("enter an A1QL JSON document followed by a blank line; :help for commands")

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("a1> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, ":") {
			if !command(db, g, trimmed) {
				return
			}
			prompt()
			continue
		}
		if trimmed != "" {
			buf.WriteString(line)
			buf.WriteString("\n")
			// Execute immediately if the document already parses.
			if !looksComplete(buf.String()) {
				prompt()
				continue
			}
		}
		if buf.Len() > 0 {
			runQuery(db, g, buf.String())
			buf.Reset()
		}
		prompt()
	}
}

// looksComplete reports whether braces balance (cheap multi-line check).
func looksComplete(s string) bool {
	depth := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inStr = !inStr
			}
		case '{':
			if !inStr {
				depth++
			}
		case '}':
			if !inStr {
				depth--
			}
		}
	}
	return depth <= 0 && strings.Contains(s, "{")
}

func runQuery(db *a1.DB, g *a1.Graph, doc string) {
	db.Run(func(c *a1.Ctx) {
		res, err := db.Query(c, g, doc)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		if res.HasCount {
			fmt.Printf("count: %d\n", res.Count)
		}
		if len(res.Aggregates) > 0 {
			keys := make([]string, 0, len(res.Aggregates))
			for k := range res.Aggregates {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if k == "_count(*)" && res.HasCount {
					continue // already printed
				}
				fmt.Printf("  %s = %v\n", k, res.Aggregates[k])
			}
		}
		for i, row := range res.Rows {
			if i >= 20 {
				fmt.Printf("... %d more rows", len(res.Rows)-20)
				if res.Continuation != "" {
					fmt.Printf(" (+ continuation)")
				}
				fmt.Println()
				break
			}
			if len(row.Values) == 0 {
				fmt.Printf("  %v\n", row.Vertex.Addr)
				continue
			}
			var parts []string
			for k, v := range row.Values {
				parts = append(parts, fmt.Sprintf("%s=%s", k, v))
			}
			fmt.Printf("  %s\n", strings.Join(parts, "  "))
		}
		s := res.Stats
		fmt.Printf("(%d hops, %d vertices, %d objects read, %.0f%% local, %d rpcs)\n",
			s.Hops, s.VerticesRead, s.ObjectsRead, s.LocalFrac*100, s.RPCs)
	})
}

func command(db *a1.DB, g *a1.Graph, cmd string) bool {
	switch strings.Fields(cmd)[0] {
	case ":quit", ":q", ":exit":
		return false
	case ":stats":
		m := &db.Fabric().Metrics
		fmt.Printf("cluster: %d machines, %d bytes allocated\n", db.Fabric().Machines(), db.UsedBytes())
		fmt.Printf("fabric: %d local reads, %d remote reads, %d rpcs, %d writes\n",
			m.LocalReads.Load(), m.RemoteReads.Load(), m.RPCs.Load(), m.RemoteWrites.Load())
	case ":examples":
		fmt.Println("-- Q1: actors who worked with Spielberg")
		fmt.Println(bench.Q1)
		fmt.Println("-- Q2: actors who played Batman")
		fmt.Println(bench.Q2)
		fmt.Println("-- Q3: war movies with Hanks and Spielberg")
		fmt.Println(bench.Q3)
		fmt.Println("-- top-K: Spielberg's five most popular films (_orderby + _limit)")
		fmt.Println(bench.QTopFilms)
		fmt.Println("-- aggregates: stats over Spielberg's filmography (_sum/_min/_max/_avg)")
		fmt.Println(bench.QFilmStats)
	case ":help":
		fmt.Println(":stats     cluster + fabric counters")
		fmt.Println(":examples  the paper's Table 2 queries plus result-shaping examples")
		fmt.Println(":quit      exit")
	default:
		fmt.Printf("unknown command %s (:help)\n", cmd)
	}
	return true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "a1shell:", err)
	os.Exit(1)
}
