// Command a1shell is an interactive A1QL shell against an in-process A1
// cluster preloaded with the film knowledge graph. Queries are JSON
// documents; blank lines execute the buffered input, so multi-line
// documents paste naturally.
//
//	$ go run ./cmd/a1shell
//	a1> { "id" : "steven.spielberg",
//	...   "_out_edge" : { "_type" : "director.film",
//	...     "_vertex" : { "_select" : ["_count(*)"] }}}
//	...
//	count: 49   (8 vertices read, 1.2ms, 96% local)
//
// Documents may reference "$name" parameters bound with :let:
//
//	a1> :let who "tom.hanks"
//	a1> { "id" : "$who", "_select" : ["id", "popularity"] }
//
// Every document is prepared against the engine's plan cache, so
// re-running a shape (with the same or different bindings) skips the
// parse; the stats line shows [plan cache hit] when it did.
//
// Shell commands: :help :open :let :unlet :explain :analyze :stats :examples :quit
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"a1"
	"a1/internal/bench"
	"a1/internal/core"
	"a1/internal/workload"
)

// maxPrintRows caps rows printed per query; the cursor is closed after,
// releasing any remaining continuation state on the coordinator.
const maxPrintRows = 20

func main() {
	var (
		machines = flag.Int("machines", 16, "simulated cluster size")
		scale    = flag.String("scale", "test", "knowledge graph size: test | paper")
	)
	flag.Parse()

	db, err := a1.Open(a1.Options{Machines: *machines})
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	var g *a1.Graph
	var kg *workload.FilmKG
	db.Run(func(c *a1.Ctx) {
		if err = db.CreateTenant(c, "bing"); err != nil {
			return
		}
		if err = db.CreateGraph(c, "bing", "kg"); err != nil {
			return
		}
		if g, err = db.OpenGraph(c, "bing", "kg"); err != nil {
			return
		}
		params := workload.TestParams()
		if *scale == "paper" {
			params = workload.PaperParams()
		}
		kg = workload.NewFilmKG(params)
		err = kg.Load(c, g)
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("a1shell: %d machines, knowledge graph loaded (%d vertices, %d edges)\n",
		*machines, kg.Stats.Vertices, kg.Stats.Edges)
	fmt.Println("enter an A1QL JSON document followed by a blank line; :help for commands")

	sh := &shell{db: db, g: g, bindings: a1.Params{}, graphs: map[string]*a1.Graph{"film": g}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("a1> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, ":") {
			if !sh.command(trimmed) {
				return
			}
			prompt()
			continue
		}
		if trimmed != "" {
			buf.WriteString(line)
			buf.WriteString("\n")
			// Execute immediately if the document already parses.
			if !looksComplete(buf.String()) {
				prompt()
				continue
			}
		}
		if buf.Len() > 0 {
			sh.runQuery(buf.String())
			buf.Reset()
		}
		prompt()
	}
}

type shell struct {
	db       *a1.DB
	g        *a1.Graph
	bindings a1.Params
	// graphs caches workload graphs already loaded by :open, keyed by
	// workload name, so re-opening just switches.
	graphs map[string]*a1.Graph
	// explainNext makes the next entered document print its compiled
	// operator tree instead of executing (set by :explain); explainJSON
	// selects the structured PlanTree JSON form (:explain -json).
	explainNext bool
	explainJSON bool
}

// open loads (once) and switches to a named workload graph: "film" is the
// preloaded knowledge graph, "zipf" the skewed planner workload with
// indexed category/score and hub-skewed link edges.
func (sh *shell) open(name string) {
	if g, ok := sh.graphs[name]; ok {
		sh.g = g
		fmt.Printf("switched to %s\n", name)
		return
	}
	if name != "zipf" {
		fmt.Printf("unknown workload %q (:open film | zipf)\n", name)
		return
	}
	var g *a1.Graph
	var err error
	sh.db.Run(func(c *a1.Ctx) {
		// A previous :open may have created the graph and then failed to
		// load it; tolerate the existing graph so retries can proceed.
		if err = sh.db.CreateGraph(c, "bing", name); err != nil && !errors.Is(err, core.ErrExists) {
			return
		}
		if g, err = sh.db.OpenGraph(c, "bing", name); err != nil {
			return
		}
		z := workload.NewZipfGraph(2000, 6000, 1)
		err = z.Load(c, g)
	})
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	sh.graphs[name] = g
	sh.g = g
	fmt.Printf("loaded zipf workload into bing/%s (2000 vertices, 6000 edges; category and score indexed)\n", name)
}

// looksComplete reports whether braces balance (cheap multi-line check).
func looksComplete(s string) bool {
	depth := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inStr = !inStr
			}
		case '{':
			if !inStr {
				depth++
			}
		case '}':
			if !inStr {
				depth--
			}
		}
	}
	return depth <= 0 && strings.Contains(s, "{")
}

// explainQuery prints the compiled operator tree for a document, threading
// the shell's :let bindings so a parameterized document explains as the
// plan its bound execution would run (unbound names still render as
// placeholders). With asJSON it prints the structured PlanTree instead.
func (sh *shell) explainQuery(doc string, asJSON bool) {
	sh.db.Run(func(c *a1.Ctx) {
		tree, err := sh.db.ExplainPlan(c, sh.g, doc, sh.bindings)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		if asJSON {
			blob, err := json.MarshalIndent(tree, "", "  ")
			if err != nil {
				fmt.Printf("error: %v\n", err)
				return
			}
			fmt.Println(string(blob))
			return
		}
		fmt.Print(tree.String())
	})
}

// runQuery prepares the document (plan cache), binds the shell's :let
// values, and streams the result through a Rows cursor — no manual Fetch
// paging.
func (sh *shell) runQuery(doc string) {
	if sh.explainNext {
		sh.explainNext = false
		sh.explainQuery(doc, sh.explainJSON)
		return
	}
	sh.db.Run(func(c *a1.Ctx) {
		pq, err := sh.db.Prepare(c, sh.g, doc)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		params := a1.Params{}
		for _, name := range pq.ParamNames() {
			if v, ok := sh.bindings[name]; ok {
				params[name] = v
			}
		}
		rows, err := pq.ExecRows(c, params)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		defer rows.Close(c)
		res := rows.Result()
		if res.HasCount {
			fmt.Printf("count: %d\n", res.Count)
		}
		if len(res.Aggregates) > 0 {
			keys := make([]string, 0, len(res.Aggregates))
			for k := range res.Aggregates {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if k == "_count(*)" && res.HasCount {
					continue // already printed
				}
				fmt.Printf("  %s = %v\n", k, res.Aggregates[k])
			}
		}
		if len(res.Groups) > 0 {
			// Grouped results: the Rows cursor iterates rows only, so drive
			// the group pages through Fetch ourselves, releasing any
			// remainder when the print cap cuts the stream short.
			printed, truncated := 0, false
			printGroups(res.Groups, &printed, &truncated)
			token := res.Continuation
			for token != "" && !truncated {
				page, err := sh.db.Fetch(c, token)
				if err != nil {
					fmt.Printf("error: %v\n", err)
					return
				}
				printGroups(page.Groups, &printed, &truncated)
				token = page.Continuation
			}
			if token != "" {
				_ = sh.db.Release(c, token)
			}
			if truncated {
				fmt.Printf("... group output capped at %d (add _limit to shape the result)\n", maxPrintRows)
			}
		} else {
			printed := 0
			truncated := false
			for rows.Next(c) {
				if printed >= maxPrintRows {
					truncated = true
					break
				}
				row := rows.Row()
				if len(row.Values) == 0 {
					fmt.Printf("  %v\n", row.Vertex.Addr)
				} else {
					cols := make([]string, 0, len(row.Values))
					for k := range row.Values {
						cols = append(cols, k)
					}
					sort.Strings(cols)
					var parts []string
					for _, k := range cols {
						parts = append(parts, fmt.Sprintf("%s=%s", k, row.Values[k]))
					}
					fmt.Printf("  %s\n", strings.Join(parts, "  "))
				}
				printed++
			}
			if err := rows.Err(); err != nil {
				fmt.Printf("error: %v\n", err)
				return
			}
			if truncated {
				fmt.Printf("... output capped at %d rows (cursor closed; add _limit to shape the result)\n", maxPrintRows)
			}
		}
		s := res.Stats
		cacheNote := ""
		if s.PlanCacheHits > 0 {
			cacheNote = ", plan cache hit"
		}
		groupNote := ""
		if s.GroupsShipped > 0 || s.GroupsFiltered > 0 {
			groupNote = fmt.Sprintf(", %d groups shipped, %d filtered", s.GroupsShipped, s.GroupsFiltered)
			if s.GroupSpills > 0 {
				groupNote += fmt.Sprintf(", %d spills", s.GroupSpills)
			}
		}
		fmt.Printf("(%d hops, %d vertices, %d objects read, %.0f%% local, %d rpcs%s%s)\n",
			s.Hops, s.VerticesRead, s.ObjectsRead, s.LocalFrac*100, s.RPCs, cacheNote, groupNote)
		if len(s.Levels) > 0 {
			var parts []string
			for _, lv := range s.Levels {
				est := "est=?"
				if lv.EstRows >= 0 {
					est = fmt.Sprintf("est=%d", lv.EstRows)
				}
				parts = append(parts, fmt.Sprintf("L%d %s %s act=%d", lv.Depth, lv.Source, est, lv.ActRows))
			}
			fmt.Printf("plan: %s\n", strings.Join(parts, " | "))
		}
	})
}

// analyze rebuilds the graph's statistics from a full scan and prints the
// summary the planner runs on.
func (sh *shell) analyze() {
	sh.db.Run(func(c *a1.Ctx) {
		sum, err := sh.db.Analyze(c, sh.g)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		types := make([]string, 0, len(sum.Types))
		for name := range sum.Types {
			types = append(types, name)
		}
		sort.Strings(types)
		for _, name := range types {
			ts := sum.Types[name]
			fmt.Printf("type %s: %d vertices\n", name, ts.Count)
			fields := make([]string, 0, len(ts.Fields))
			for f := range ts.Fields {
				fields = append(fields, f)
			}
			sort.Strings(fields)
			for _, f := range fields {
				fs := ts.Fields[f]
				line := fmt.Sprintf("  %s: %d values, ~%d distinct", f, fs.Count, fs.Distinct)
				if len(fs.TopK) > 0 {
					line += fmt.Sprintf(", top %v (%d)", fs.TopK[0].Value, fs.TopK[0].Count)
				}
				fmt.Println(line)
			}
		}
		labels := make([]string, 0, len(sum.Edges))
		for name := range sum.Edges {
			labels = append(labels, name)
		}
		sort.Strings(labels)
		for _, name := range labels {
			es := sum.Edges[name]
			fmt.Printf("edge %s: %d edges, mean out-degree %.1f\n", name, es.Count, es.MeanOutDegree())
		}
	})
}

// printGroups renders group rows up to the print cap, flagging truncation.
func printGroups(groups []a1.GroupRow, printed *int, truncated *bool) {
	for _, gr := range groups {
		if *printed >= maxPrintRows {
			*truncated = true
			return
		}
		var parts []string
		keys := make([]string, 0, len(gr.Keys))
		for k := range gr.Keys {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%v", k, gr.Keys[k]))
		}
		aggs := make([]string, 0, len(gr.Aggregates))
		for k := range gr.Aggregates {
			aggs = append(aggs, k)
		}
		sort.Strings(aggs)
		for _, k := range aggs {
			parts = append(parts, fmt.Sprintf("%s=%v", k, gr.Aggregates[k]))
		}
		fmt.Printf("  %s\n", strings.Join(parts, "  "))
		*printed++
	}
}

func (sh *shell) command(cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ":quit", ":q", ":exit":
		return false
	case ":let":
		sh.let(cmd, fields)
	case ":unlet":
		if len(fields) != 2 {
			fmt.Println("usage: :unlet name")
			break
		}
		delete(sh.bindings, fields[1])
	case ":open":
		if len(fields) != 2 {
			fmt.Println("usage: :open film | zipf")
			break
		}
		sh.open(fields[1])
	case ":explain":
		rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(cmd), ":explain"))
		asJSON := false
		if rest == "-json" || strings.HasPrefix(rest, "-json ") || strings.HasPrefix(rest, "-json\t") {
			asJSON = true
			rest = strings.TrimSpace(strings.TrimPrefix(rest, "-json"))
		}
		if rest != "" {
			sh.explainQuery(rest, asJSON)
			break
		}
		sh.explainNext = true
		sh.explainJSON = asJSON
		fmt.Println("explain armed: the next document prints its operator tree instead of executing")
	case ":analyze":
		sh.analyze()
	case ":stats":
		m := &sh.db.Fabric().Metrics
		hits, misses := sh.db.Engine().PlanCacheStats()
		fmt.Printf("cluster: %d machines, %d bytes allocated\n", sh.db.Fabric().Machines(), sh.db.UsedBytes())
		fmt.Printf("fabric: %d local reads, %d remote reads, %d rpcs, %d writes\n",
			m.LocalReads.Load(), m.RemoteReads.Load(), m.RPCs.Load(), m.RemoteWrites.Load())
		fmt.Printf("plan cache: %d hits, %d misses\n", hits, misses)
	case ":examples":
		fmt.Println("-- Q1: actors who worked with Spielberg")
		fmt.Println(bench.Q1)
		fmt.Println("-- Q2: actors who played Batman")
		fmt.Println(bench.Q2)
		fmt.Println("-- Q3: war movies with Hanks and Spielberg")
		fmt.Println(bench.Q3)
		fmt.Println("-- top-K: Spielberg's five most popular films (_orderby + _limit)")
		fmt.Println(bench.QTopFilms)
		fmt.Println("-- aggregates: stats over Spielberg's filmography (_sum/_min/_max/_avg)")
		fmt.Println(bench.QFilmStats)
		fmt.Println("-- grouped aggregates: Spielberg's films per release year (_groupby)")
		fmt.Println(bench.QFilmsByYear)
		fmt.Println("-- parameters: bind with :let, then reference \"$name\" (prepared once, re-run cheaply)")
		fmt.Println(`:let director "steven.spielberg"`)
		fmt.Println(`:let k 5`)
		fmt.Println(bench.QTopFilmsParam)
	case ":help":
		fmt.Println(":open name         switch workload graph: film (default) | zipf (skewed, indexed category/score)")
		fmt.Println(":let               list parameter bindings")
		fmt.Println(":let name value    bind $name (value is JSON: 42, 3.5, \"str\", true)")
		fmt.Println(":unlet name        remove a binding")
		fmt.Println(":explain [doc]     print the compiled operator tree with est=N cardinalities, using current :let bindings (no doc: applies to the next document)")
		fmt.Println(":explain -json     same, as the structured PlanTree JSON (tooling form)")
		fmt.Println(":analyze           rebuild graph statistics from a full scan and print them")
		fmt.Println(":stats             cluster + fabric + plan cache counters")
		fmt.Println(":examples          the paper's Table 2 queries plus shaping/parameter examples")
		fmt.Println(":quit              exit")
		fmt.Println()
		fmt.Println("documents may use \"$name\" parameters (id, predicate values, _limit/_skip);")
		fmt.Println("every document is prepared once and re-executions hit the plan cache;")
		fmt.Println("large results stream through a cursor — no manual continuation paging")
	default:
		fmt.Printf("unknown command %s (:help)\n", cmd)
	}
	return true
}

// let implements `:let` (list) and `:let name value` (bind). Values parse
// as JSON; unparseable values bind as bare strings for convenience.
func (sh *shell) let(cmd string, fields []string) {
	if len(fields) == 1 {
		if len(sh.bindings) == 0 {
			fmt.Println("no bindings (use :let name value)")
			return
		}
		names := make([]string, 0, len(sh.bindings))
		for n := range sh.bindings {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  $%s = %v\n", n, sh.bindings[n])
		}
		return
	}
	name := fields[1]
	rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(cmd), ":let"))
	rest = strings.TrimSpace(strings.TrimPrefix(rest, name))
	if rest == "" {
		fmt.Println("usage: :let name value")
		return
	}
	dec := json.NewDecoder(bytes.NewReader([]byte(rest)))
	dec.UseNumber()
	var v interface{}
	if err := dec.Decode(&v); err != nil {
		v = rest // bare string
	}
	sh.bindings[name] = v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "a1shell:", err)
	os.Exit(1)
}
