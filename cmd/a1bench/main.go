// Command a1bench regenerates the paper's evaluation tables and figures
// (§6) on the simulated cluster. Each experiment prints the same series the
// paper plots, plus notes comparing against the published numbers.
//
// Usage:
//
//	a1bench -experiment all                 # every experiment, test scale
//	a1bench -experiment fig10 -scale paper  # Figure 10 on 245 machines
//	a1bench -list                           # enumerate experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"a1/internal/bench"
)

type experiment struct {
	id   string
	desc string
	run  func(bench.Spec) ([]*bench.Report, error)
}

func single(fn func(bench.Spec) (*bench.Report, error)) func(bench.Spec) ([]*bench.Report, error) {
	return func(s bench.Spec) ([]*bench.Report, error) {
		r, err := fn(s)
		if err != nil {
			return nil, err
		}
		return []*bench.Report{r}, nil
	}
}

var experiments = []experiment{
	{"fig10", "Q1 (Spielberg collaborators) avg/P99 latency vs offered load", single(bench.Fig10)},
	{"fig11", "total RDMA read time vs number of reads per operator batch", single(bench.Fig11)},
	{"fig12", "Q2 (actors who played Batman) avg/P99 latency vs offered load", single(bench.Fig12)},
	{"fig13", "Q3 (star pattern) avg/P99 latency vs offered load", single(bench.Fig13)},
	{"fig14", "latency vs throughput for cluster sizes 10/15/35/55", single(bench.Fig14)},
	{"q4", "Q4 stress: vertices/query, latency, cluster read rate", single(bench.Q4Stress)},
	{"locality", "query shipping locality (95% local reads)", single(bench.Locality)},
	{"baseline", "A1 vs two-tier cache stack (the 3.6x claim)", single(bench.BaselineCompare)},
	{"restart", "fast restart vs disaster recovery downtime", single(bench.FastRestart)},
	{"ablations", "edge-spill / shipping / placement design ablations", bench.Ablations},
	{"pushdown", "result-shaping pushdown: _limit / aggregate scalar shipping wins", single(bench.Pushdown)},
	{"plancache", "prepared statements: parse-once plan cache vs per-request parsing", single(bench.PlanCache)},
	{"groupby", "grouped-aggregate pushdown vs coordinator-side grouping", single(bench.GroupBy)},
	{"planner", "cost-based vs structural access-path choice on the Zipf-skewed workload", single(bench.Planner)},
	{"toporder", "ordered traversal terminal: merged top-K vs frontier sort on the Zipf workload", single(bench.TopOrder)},
	{"allocs", "hot-path allocation discipline: allocs/op and bytes/op, pooled vs unpooled", single(bench.Allocs)},
	{"groupcard", "high-cardinality _groupby: streaming merge vs map-accumulate, _having pushdown, spill", single(bench.GroupCard)},
	{"recurse", "_recurse reachability: visited-set dedup vs naive frontier expansion on the Zipf hubs", single(bench.Recurse)},
}

func main() {
	var (
		expFlag   = flag.String("experiment", "all", "experiment id or 'all'")
		scaleFlag = flag.String("scale", "test", "test | paper (245 machines, slower)")
		machines  = flag.Int("machines", 0, "override machine count")
		queries   = flag.Int("queries", 0, "override queries per load point")
		seed      = flag.Int64("seed", 1, "simulation seed")
		list      = flag.Bool("list", false, "list experiments and exit")
		quick     = flag.Bool("quick", false, "smoke mode: tiny cluster and query counts so every experiment runs in seconds (CI)")
		jsonDir   = flag.String("json", "", "also write each report as <dir>/<id>.json (benchmark trend artifacts)")
		compare   = flag.String("compare", "", "compare two report directories, 'old:new' (or with -json as new), print a markdown delta table, and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-10s %s\n", e.id, e.desc)
		}
		return
	}

	if *compare != "" {
		oldDir, newDir, ok := strings.Cut(*compare, ":")
		if !ok {
			newDir = *jsonDir
		}
		if oldDir == "" || newDir == "" {
			fmt.Fprintln(os.Stderr, "a1bench: -compare wants old:new directories (or -compare old -json new)")
			os.Exit(2)
		}
		if err := bench.CompareDirs(os.Stdout, oldDir, newDir); err != nil {
			fmt.Fprintf(os.Stderr, "a1bench: compare: %v\n", err)
			os.Exit(1)
		}
		return
	}

	scale := bench.ScaleTest
	if *scaleFlag == "paper" {
		scale = bench.ScalePaper
	}
	spec := bench.DefaultSpec(scale)
	spec.Seed = *seed
	if *quick {
		spec.Machines = 10
		spec.Racks = 3
		spec.Rates = []float64{400, 800}
		spec.QueriesPerPt = 25
	}
	if *machines > 0 {
		spec.Machines = *machines
	}
	if *queries > 0 {
		spec.QueriesPerPt = *queries
	}

	ran := 0
	for _, e := range experiments {
		if *expFlag != "all" && !strings.EqualFold(*expFlag, e.id) {
			continue
		}
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s (%s scale, %d machines)...\n", e.id, *scaleFlag, spec.Machines)
		reports, err := e.run(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "a1bench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		for _, r := range reports {
			r.Format(os.Stdout)
			if *jsonDir != "" {
				if err := r.WriteJSON(*jsonDir); err != nil {
					fmt.Fprintf(os.Stderr, "a1bench: %s: writing json: %v\n", r.ID, err)
					os.Exit(1)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "%s done in %v\n", e.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "a1bench: unknown experiment %q (use -list)\n", *expFlag)
		os.Exit(2)
	}
}
