package a1_test

import (
	"testing"

	"a1"
	"a1/internal/workload"
)

// Alloc-tracked microbenchmarks over the query hot path (Direct mode,
// real wall clock, -benchmem/-ReportAllocs): the 2-hop Zipf traversal,
// the ordered index-scan root, and the `_groupby` rollup. These are the
// go-test twins of the `allocs` a1bench report — CI runs them with
// -benchmem so allocs/op regressions show next to the trend table.

func directZipf(b *testing.B) (*a1.DB, *a1.Graph, *workload.ZipfGraph) {
	b.Helper()
	db, err := a1.Open(a1.Options{Machines: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(db.Close)
	var g *a1.Graph
	z := workload.NewZipfGraph(2000, 6000, 1)
	var loadErr error
	db.Run(func(c *a1.Ctx) {
		if loadErr = db.CreateTenant(c, "bing"); loadErr != nil {
			return
		}
		if loadErr = db.CreateGraph(c, "bing", "zipf"); loadErr != nil {
			return
		}
		if g, loadErr = db.OpenGraph(c, "bing", "zipf"); loadErr != nil {
			return
		}
		loadErr = z.Load(c, g)
	})
	if loadErr != nil {
		b.Fatal(loadErr)
	}
	return db, g, z
}

func benchAllocQuery(b *testing.B, query func(z *workload.ZipfGraph) string) {
	b.Helper()
	db, g, z := directZipf(b)
	doc := query(z)
	db.Run(func(c *a1.Ctx) {
		// Warm plan cache and stats so iterations measure execution only.
		if _, err := db.Query(c, g, doc); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(c, g, doc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAllocZipfTwoHop is the headline path: top-K by score over the
// out-neighbors of the hot category (OrderedTraverse terminal).
func BenchmarkAllocZipfTwoHop(b *testing.B) {
	benchAllocQuery(b, func(z *workload.ZipfGraph) string {
		return z.TopKNeighborsQuery(z.HotCategory(), 10)
	})
}

// BenchmarkAllocZipfTopKCategory is the ordered index-scan root.
func BenchmarkAllocZipfTopKCategory(b *testing.B) {
	benchAllocQuery(b, func(z *workload.ZipfGraph) string {
		return z.TopKInCategoryQuery(z.HotCategory(), 10)
	})
}

// BenchmarkAllocZipfGroupBy is the `_groupby` rollup over every vertex.
func BenchmarkAllocZipfGroupBy(b *testing.B) {
	benchAllocQuery(b, func(z *workload.ZipfGraph) string {
		return z.TopGroupsQuery(10)
	})
}

// BenchmarkAllocZipfGroupStream is the high-cardinality streamed form:
// one group per vertex, drained through the k-way run merge (`_limit`
// keeps each iteration to one page so no continuation state lingers).
func BenchmarkAllocZipfGroupStream(b *testing.B) {
	benchAllocQuery(b, func(z *workload.ZipfGraph) string {
		return `{"_type": "node", "_groupby": "score", "_select": ["_count(*)"], "_limit": 100}`
	})
}

// BenchmarkAllocZipfGroupHaving adds a `_having` bound that workers prove
// locally, so most groups ship as key-only tombstones.
func BenchmarkAllocZipfGroupHaving(b *testing.B) {
	benchAllocQuery(b, func(z *workload.ZipfGraph) string {
		return `{"_type": "node", "_groupby": "score", "_select": ["_count(*)", "_max(score)"], "_having": {"_max(score)": {"_lt": 400}}, "_limit": 100}`
	})
}
