package a1

import "a1/internal/bond"

// Schema construction helpers re-exported from the Bond layer, so
// applications can declare types without importing internal packages:
//
//	actor := a1.NewSchema("Actor",
//	    a1.Req(0, "name", a1.TString),
//	    a1.Opt(1, "origin", a1.TString),
//	    a1.Opt(2, "birth_date", a1.TDate),
//	)

// Scalar field types.
var (
	TBool   = bond.TBool
	TInt32  = bond.TInt32
	TInt64  = bond.TInt64
	TUInt64 = bond.TUInt64
	TFloat  = bond.TFloat
	TDouble = bond.TDouble
	TString = bond.TString
	TBlob   = bond.TBlob
	TDate   = bond.TDate
)

// TListOf returns a list type.
func TListOf(elem bond.Type) bond.Type { return bond.TListOf(elem) }

// TMapOf returns a map type.
func TMapOf(key, val bond.Type) bond.Type { return bond.TMapOf(key, val) }

// NewSchema builds a schema, panicking on duplicate ids/names (static
// declarations).
func NewSchema(name string, fields ...bond.Field) *Schema {
	return bond.MustSchema(name, fields...)
}

// Opt declares an optional field.
func Opt(id uint16, name string, t bond.Type) bond.Field { return bond.F(id, name, t) }

// Req declares a required field.
func Req(id uint16, name string, t bond.Type) bond.Field { return bond.FReq(id, name, t) }

// Value constructors.
var Null = bond.Null

// Str returns a string value.
func Str(s string) Value { return bond.String(s) }

// I64 returns an int64 value.
func I64(i int64) Value { return bond.Int64(i) }

// I32 returns an int32 value.
func I32(i int32) Value { return bond.Int32(i) }

// F64 returns a double value.
func F64(f float64) Value { return bond.Double(f) }

// B returns a bool value.
func B(b bool) Value { return bond.Bool(b) }

// DateDays returns a date value (days since the Unix epoch).
func DateDays(d int64) Value { return bond.Date(d) }

// ListOf returns a list value.
func ListOf(elems ...Value) Value { return bond.List(elems...) }

// StrMap returns a map<string,string> value — the payload shape of
// semi-structured knowledge-graph entities (§5).
func StrMap(m map[string]string) Value { return bond.StringMap(m) }

// Record builds a struct value from (field id, value) pairs.
func Record(fields ...bond.FieldValue) Value { return bond.Struct(fields...) }

// FV pairs a field id with a value inside Record.
func FV(id uint16, v Value) bond.FieldValue { return bond.FV(id, v) }
