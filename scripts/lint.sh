#!/usr/bin/env bash
# Local entrypoint for the project lint suite, mirroring the CI lint job:
# build cmd/a1lint from the working tree and run every analyzer over the
# whole module. Run from the repo root. Any unsuppressed finding — or a
# malformed/stale //lint:ignore — exits nonzero, exactly as in CI.
#
# Pass extra arguments through to a1lint, e.g.:
#   ./scripts/lint.sh -only maporder ./internal/query
#   ./scripts/lint.sh -v            # also list suppressed findings
set -euo pipefail

cd "$(dirname "$0")/.."
exec go run ./cmd/a1lint "$@"
