#!/usr/bin/env bash
# Scripted a1shell session: :open the zipf workload, run a query, and
# :explain an ordered traversal — so shell regressions fail CI instead of
# being found by hand. Run from the repo root; exercises the same binary CI
# builds with `go build ./cmd/...`.
set -euo pipefail

out=$(mktemp)
trap 'rm -f "$out"' EXIT

go run ./cmd/a1shell -machines 8 >"$out" 2>&1 <<'EOF'
:help
:open zipf
{ "_type": "node", "category": "c000", "_select": ["id", "score"],
  "_orderby": "-score", "_limit": 3 }

:explain { "_type": "node", "category": "c000", "_out_edge": { "_type": "link", "_vertex": { "_type": "node", "_orderby": "-score", "_limit": 5, "_select": ["id"] } } }
:open film
:let director "steven.spielberg"
{ "id": "$director", "_out_edge": { "_type": "director.film",
    "_vertex": { "_select": ["_count(*)"] } } }

:quit
EOF

fail() {
  echo "shell smoke: missing expected output: $1" >&2
  echo "---- session transcript ----" >&2
  cat "$out" >&2
  exit 1
}

grep -q "knowledge graph loaded" "$out" || fail "startup banner"
grep -q "loaded zipf workload" "$out" || fail ":open zipf"
# The top-3-by-score query prints rows with projected values.
grep -q "score=" "$out" || fail "query rows"
# Explain renders the operator tree with cardinality estimates; the ordered
# traversal terminal resolves to OrderedTraverse against live statistics.
grep -q "L0 IndexScan" "$out" || fail ":explain operator tree"
grep -q "est=" "$out" || fail ":explain estimates"
grep -q "OrderedTraverse" "$out" || fail ":explain OrderedTraverse terminal"
grep -q "switched to film" "$out" || fail ":open film switch-back"
grep -q "count:" "$out" || fail "parameterized count query"
grep -q "plan:" "$out" || fail "per-level plan stats line"

echo "shell smoke: ok"
