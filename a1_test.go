package a1

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"a1/internal/core"
	"a1/internal/workload"
)

// Integration tests driving the whole stack through the public facade.

func openTestDB(t *testing.T, opts Options) *DB {
	t.Helper()
	if opts.Machines == 0 {
		opts.Machines = 8
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

var movieSchema = NewSchema("movie",
	Req(0, "title", TString),
	Opt(1, "year", TInt64),
	Opt(2, "tags", TListOf(TString)),
)

var personSchema = NewSchema("person",
	Req(0, "name", TString),
	Opt(1, "origin", TString),
)

var roleSchema = NewSchema("role",
	Opt(0, "character", TString),
)

func setupFilmGraph(t *testing.T, db *DB, c *Ctx) *Graph {
	t.Helper()
	if err := db.CreateTenant(c, "bing"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateGraph(c, "bing", "films"); err != nil {
		t.Fatal(err)
	}
	g, err := db.OpenGraph(c, "bing", "films")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CreateVertexType(c, "movie", movieSchema, "title", "year"); err != nil {
		t.Fatal(err)
	}
	if err := g.CreateVertexType(c, "person", personSchema, "name", "origin"); err != nil {
		t.Fatal(err)
	}
	if err := g.CreateEdgeType(c, "acted", roleSchema); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPublicAPILifecycle(t *testing.T) {
	db := openTestDB(t, Options{})
	db.Run(func(c *Ctx) {
		g := setupFilmGraph(t, db, c)
		var movie, actor VertexPtr
		err := db.Transaction(c, func(tx *Tx) error {
			var err error
			movie, err = g.CreateVertex(tx, "movie", Record(
				FV(0, Str("Big")), FV(1, I64(1988)), FV(2, ListOf(Str("comedy"))),
			))
			if err != nil {
				return err
			}
			actor, err = g.CreateVertex(tx, "person", Record(
				FV(0, Str("Tom Hanks")), FV(1, Str("usa")),
			))
			if err != nil {
				return err
			}
			return g.CreateEdge(tx, movie, "acted", actor, Record(FV(0, Str("Josh"))))
		})
		if err != nil {
			t.Fatal(err)
		}

		// Read through a snapshot transaction.
		rtx := db.ReadTransaction(c)
		v, err := g.ReadVertex(rtx, movie)
		if err != nil {
			t.Fatal(err)
		}
		if title, _ := v.Data.Field(0); title.AsString() != "Big" {
			t.Errorf("title = %v", title)
		}
		val, ok, err := g.GetEdge(rtx, movie, "acted", actor)
		if err != nil || !ok {
			t.Fatalf("edge: %v %v", ok, err)
		}
		if ch, _ := val.Field(0); ch.AsString() != "Josh" {
			t.Errorf("character = %v", ch)
		}

		// A1QL through the frontend.
		res, err := db.Query(c, g, `{"id": "Big",
			"_out_edge": {"_type": "acted", "_vertex": {"_select": ["name"]}}}`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0].Values["name"].AsString() != "Tom Hanks" {
			t.Errorf("rows = %+v", res.Rows)
		}
	})
}

func TestPublicAPIDeleteGraphWorkflow(t *testing.T) {
	db := openTestDB(t, Options{})
	db.Run(func(c *Ctx) {
		g := setupFilmGraph(t, db, c)
		err := db.Transaction(c, func(tx *Tx) error {
			for i := 0; i < 30; i++ {
				if _, err := g.CreateVertex(tx, "person", Record(
					FV(0, Str(fmt.Sprintf("p%02d", i))),
				)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.DeleteGraphAsync(c, "bing", "films"); err != nil {
			t.Fatal(err)
		}
		if _, err := db.RunPendingTasks(c); err != nil {
			t.Fatal(err)
		}
		if _, err := db.OpenGraph(c, "bing", "films"); !errors.Is(err, core.ErrNotFound) {
			t.Errorf("graph survives deletion: %v", err)
		}
	})
}

func TestPublicAPIDisasterRecovery(t *testing.T) {
	db := openTestDB(t, Options{EnableDR: true, DRMode: RecoverConsistent})
	var store *ObjectStore
	db.Run(func(c *Ctx) {
		g := setupFilmGraph(t, db, c)
		if err := db.EnableReplication(c, g); err != nil {
			t.Fatal(err)
		}
		err := db.Transaction(c, func(tx *Tx) error {
			m, err := g.CreateVertex(tx, "movie", Record(FV(0, Str("Jaws")), FV(1, I64(1975))))
			if err != nil {
				return err
			}
			p, err := g.CreateVertex(tx, "person", Record(FV(0, Str("Roy Scheider"))))
			if err != nil {
				return err
			}
			return g.CreateEdge(tx, m, "acted", p, Null)
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.FlushReplication(c); err != nil {
			t.Fatal(err)
		}
		store = db.DurableStore()
	})

	// Total datacenter loss: build a brand-new cluster and recover.
	db2 := openTestDB(t, Options{})
	db2.Run(func(c *Ctx) {
		stats, err := db2.Recover(c, store, "bing", "films", RecoverConsistent)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Vertices != 2 || stats.Edges != 1 {
			t.Errorf("recovered %d/%d, want 2/1", stats.Vertices, stats.Edges)
		}
		g, err := db2.OpenGraph(c, "bing", "films")
		if err != nil {
			t.Fatal(err)
		}
		res, err := db2.Query(c, g, `{"id": "Jaws", "_out_edge": {"_type": "acted", "_vertex": {"_select": ["name"]}}}`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Errorf("post-recovery rows = %d", len(res.Rows))
		}
	})
}

func TestPublicAPIFastRestartDrill(t *testing.T) {
	db := openTestDB(t, Options{Machines: 9, Mode: Sim})
	var vp VertexPtr
	var g *Graph
	db.Run(func(c *Ctx) {
		g = setupFilmGraph(t, db, c)
		err := db.Transaction(c, func(tx *Tx) error {
			var err error
			vp, err = g.CreateVertex(tx, "movie", Record(FV(0, Str("Duel"))))
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	db.Run(func(c *Ctx) {
		primary, err := db.Farm().PrimaryOf(c, vp.Addr)
		if err != nil {
			t.Fatal(err)
		}
		db.CrashProcess(c, primary)
		db.RestartProcess(c, primary)
		rtx := db.ReadTransaction(c)
		if _, err := g.ReadVertex(rtx, vp); err != nil {
			t.Errorf("read after fast restart: %v", err)
		}
	})
}

func TestPublicAPISimModeKnowledgeGraph(t *testing.T) {
	db := openTestDB(t, Options{Machines: 12, Mode: Sim})
	db.Run(func(c *Ctx) {
		if err := db.CreateTenant(c, "bing"); err != nil {
			t.Fatal(err)
		}
		if err := db.CreateGraph(c, "bing", "kg"); err != nil {
			t.Fatal(err)
		}
		g, err := db.OpenGraph(c, "bing", "kg")
		if err != nil {
			t.Fatal(err)
		}
		kg := workload.NewFilmKG(workload.TestParams())
		if err := kg.Load(c, g); err != nil {
			t.Fatal(err)
		}
		res, err := db.Query(c, g, `{ "id" : "steven.spielberg",
			"_out_edge" : { "_type" : "director.film",
			  "_vertex" : {
			    "_out_edge" : { "_type" : "film.actor",
			      "_vertex" : { "_select" : ["_count(*)"] }}}}}`)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count == 0 {
			t.Error("zero actors")
		}
		if res.Stats.Elapsed <= 0 {
			t.Error("no virtual latency measured")
		}
		t.Logf("sim Q1: count=%d latency=%v local=%.1f%% objects=%d",
			res.Count, res.Stats.Elapsed, res.Stats.LocalFrac*100, res.Stats.ObjectsRead)
	})
}

func TestPublicAPIPreparedAndCursor(t *testing.T) {
	db := openTestDB(t, Options{Machines: 8})
	db.Run(func(c *Ctx) {
		if err := db.CreateTenant(c, "bing"); err != nil {
			t.Fatal(err)
		}
		if err := db.CreateGraph(c, "bing", "kg"); err != nil {
			t.Fatal(err)
		}
		g, err := db.OpenGraph(c, "bing", "kg")
		if err != nil {
			t.Fatal(err)
		}
		kg := workload.NewFilmKG(workload.TestParams())
		if err := kg.Load(c, g); err != nil {
			t.Fatal(err)
		}

		// Prepare once, execute with different bind values; each execution
		// is a plan-cache hit (zero parses) and matches the literal twin.
		pq, err := db.Prepare(c, g, `{"id": "$who", "_out_edge": {"_type": "actor.film",
			"_vertex": {"_select": ["_count(*)"]}}}`)
		if err != nil {
			t.Fatal(err)
		}
		for _, who := range []string{"tom.hanks", "actor.00000"} {
			res, err := pq.Exec(c, Params{"who": who})
			if err != nil {
				t.Fatalf("%s: %v", who, err)
			}
			if res.Stats.PlanCacheHits != 1 {
				t.Errorf("%s: PlanCacheHits = %d, want 1", who, res.Stats.PlanCacheHits)
			}
			literal, err := db.Query(c, g, fmt.Sprintf(`{"id": %q, "_out_edge": {"_type": "actor.film",
				"_vertex": {"_select": ["_count(*)"]}}}`, who))
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != literal.Count {
				t.Errorf("%s: prepared %d != literal %d", who, res.Count, literal.Count)
			}
		}

		// A cursor streams a multi-page result to exhaustion with no
		// manual Fetch calls.
		rows, err := db.QueryRows(c, g, `{"_hints": {"page_size": 10},
			"_type": "entity", "str_str_map[kind]": "actor", "_select": ["id"]}`)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for rows.Next(c) {
			n++
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		want := workload.TestParams().ActorPool + 1
		if n != want || rows.Pages() < 2 {
			t.Errorf("streamed %d rows over %d pages, want %d rows multi-page", n, rows.Pages(), want)
		}

		// Abandoning a stream releases coordinator continuation state.
		rows, err = pq.ExecRows(c, Params{"who": "tom.hanks"})
		if err != nil {
			t.Fatal(err)
		}
		if err := rows.Close(c); err != nil {
			t.Fatal(err)
		}
		for m := 0; m < db.Fabric().Machines(); m++ {
			if n := db.Engine().PendingResults(MachineID(m)); n != 0 {
				t.Errorf("machine %d holds %d continuation entries after Close", m, n)
			}
		}
	})
}

func TestPublicAPIThrottlingEndToEnd(t *testing.T) {
	// MaxInflight surfaces ErrThrottled through the whole stack. In Sim
	// mode the interleaving is deterministic: each query holds its
	// frontend slot across simulated client wire time, so concurrent
	// queries beyond the limit are rejected.
	db := openTestDB(t, Options{Machines: 8, Mode: Sim, Frontends: 1, MaxInflight: 1})
	db.Run(func(c *Ctx) {
		if err := db.CreateTenant(c, "bing"); err != nil {
			t.Fatal(err)
		}
		if err := db.CreateGraph(c, "bing", "kg"); err != nil {
			t.Fatal(err)
		}
		g, err := db.OpenGraph(c, "bing", "kg")
		if err != nil {
			t.Fatal(err)
		}
		kg := workload.NewFilmKG(workload.TestParams())
		if err := kg.Load(c, g); err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		throttled, succeeded := 0, 0
		c.Parallel(3, func(i int, cc *Ctx) {
			_, err := db.Query(cc, g, `{"id": "tom.hanks", "_select": ["id"]}`)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				succeeded++
			case errors.Is(err, ErrThrottled):
				throttled++
			default:
				t.Errorf("query %d: %v", i, err)
			}
		})
		if succeeded == 0 || throttled == 0 {
			t.Errorf("succeeded=%d throttled=%d, want both nonzero", succeeded, throttled)
		}
		// Once the burst drains, the frontend accepts requests again.
		if _, err := db.Query(c, g, `{"id": "tom.hanks", "_select": ["id"]}`); err != nil {
			t.Errorf("query after burst: %v", err)
		}
	})
}

func TestSchemaHelpers(t *testing.T) {
	s := NewSchema("x", Req(0, "k", TString), Opt(1, "n", TInt64), Opt(2, "m", TMapOf(TString, TString)))
	v := Record(FV(0, Str("a")), FV(1, I64(5)), FV(2, StrMap(map[string]string{"x": "y"})))
	if err := s.Validate(v); err != nil {
		t.Fatal(err)
	}
	bad := Record(FV(1, I64(5)))
	if err := s.Validate(bad); err == nil {
		t.Error("missing required key accepted")
	}
}

func TestPublicAPIExplainAndGroupBy(t *testing.T) {
	db := openTestDB(t, Options{})
	db.Run(func(c *Ctx) {
		g := setupFilmGraph(t, db, c)
		err := db.Transaction(c, func(tx *Tx) error {
			for i := 0; i < 12; i++ {
				_, err := g.CreateVertex(tx, "movie", Record(
					FV(0, Str(fmt.Sprintf("m%02d", i))),
					FV(1, I64(int64(1990+i%3))),
				))
				if err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}

		// Explain resolves index candidates against the live catalog: year
		// is secondary-indexed, so the ordered top-K compiles to an
		// OrderedIndexScan.
		plan, err := db.Explain(c, g, `{"_type": "movie", "_orderby": "-year", "_limit": 3, "_select": ["title"]}`)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(plan, "OrderedIndexScan(movie.year desc, stop after 3)") {
			t.Errorf("plan missing ordered scan:\n%s", plan)
		}

		// Grouped aggregates through the frontend tier.
		res, err := db.Query(c, g, `{"_type": "movie", "_groupby": "year", "_select": ["_count(*)"]}`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Groups) != 3 {
			t.Fatalf("groups = %d, want 3", len(res.Groups))
		}
		total := int64(0)
		for _, gr := range res.Groups {
			total += gr.Aggregates["_count(*)"].AsInt()
		}
		if total != 12 {
			t.Errorf("grouped counts sum = %d, want 12", total)
		}
		if res.Stats.RowsShipped != 0 {
			t.Errorf("RowsShipped = %d, want 0", res.Stats.RowsShipped)
		}

		// The ordered top-K reads O(limit) vertices, not the type.
		topK, err := db.Query(c, g, `{"_type": "movie", "_orderby": "-year", "_limit": 3, "_select": ["title", "year"]}`)
		if err != nil {
			t.Fatal(err)
		}
		if len(topK.Rows) != 3 || topK.Rows[0].Values["year"].AsInt() != 1992 {
			t.Fatalf("topK rows = %+v", topK.Rows)
		}
		// Reads = limit + the boundary tie-run overshoot (years repeat 4x,
		// so one extra 1992 movie is read for deterministic tie-breaking) —
		// still O(limit), not the type's 12.
		if topK.Stats.VerticesRead != 4 {
			t.Errorf("topK VerticesRead = %d, want 4 of 12", topK.Stats.VerticesRead)
		}
	})
}

func TestGraphStatisticsAndAnalyze(t *testing.T) {
	db := openTestDB(t, Options{})
	db.Run(func(c *Ctx) {
		g := setupFilmGraph(t, db, c)
		err := db.Transaction(c, func(tx *Tx) error {
			for i := 0; i < 20; i++ {
				origin := "usa"
				if i >= 15 {
					origin = "uk"
				}
				if _, err := g.CreateVertex(tx, "person", Record(
					FV(0, Str(fmt.Sprintf("p%02d", i))), FV(1, Str(origin)),
				)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := db.Analyze(c, g) // bypass the TTL cache for a fresh view
		if err != nil {
			t.Fatal(err)
		}
		if n, ok := sum.TypeCount("person"); !ok || n != 20 {
			t.Fatalf("person count = %d/%v, want 20", n, ok)
		}
		fs, ok := sum.FieldStats("person", "origin")
		if !ok || fs.Count != 20 {
			t.Fatalf("origin stats = %+v/%v, want 20 values", fs, ok)
		}
		if db.Stats(c, g) == nil {
			t.Fatal("Stats returned nil")
		}

		// Estimated-vs-actual per level surfaces in query stats, and the
		// cost-based planner annotates Explain with est=.
		res, err := db.Query(c, g, `{"_type": "person", "origin": "usa", "_select": ["_count(*)"]}`)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != 15 {
			t.Fatalf("count = %d, want 15", res.Count)
		}
		if len(res.Stats.Levels) != 1 || res.Stats.Levels[0].ActRows != 15 {
			t.Fatalf("Levels = %+v, want one level with act=15", res.Stats.Levels)
		}
		if res.Stats.Levels[0].EstRows < 1 {
			t.Fatalf("Levels[0].EstRows = %d, want an estimate", res.Stats.Levels[0].EstRows)
		}
		plan, err := db.Explain(c, g, `{"_type": "person", "origin": "usa", "_select": ["_count(*)"]}`)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(plan, "est=") {
			t.Errorf("Explain lacks est= annotation:\n%s", plan)
		}
	})
}
