module a1

go 1.24
