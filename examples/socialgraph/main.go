// Social graph: a TAO-shaped workload (§1) demonstrating why A1's
// transactions matter. Friendships are symmetric pairs of directed edges;
// in an eventually-consistent store the forward link can exist without the
// backward one, but here both are created in one atomic transaction —
// concurrent befriend/unfriend storms can never leave a partial edge.
package main

import (
	"fmt"
	"log"
	"sync"

	"a1"
)

var userSchema = a1.NewSchema("User",
	a1.Req(0, "handle", a1.TString),
	a1.Opt(1, "country", a1.TString),
	a1.Opt(2, "joined", a1.TDate),
)

var postSchema = a1.NewSchema("Post",
	a1.Req(0, "id", a1.TString),
	a1.Opt(1, "text", a1.TString),
)

func main() {
	db, err := a1.Open(a1.Options{Machines: 12})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	var g *a1.Graph
	db.Run(func(c *a1.Ctx) {
		must(db.CreateTenant(c, "social"))
		must(db.CreateGraph(c, "social", "net"))
		g, err = db.OpenGraph(c, "social", "net")
		must(err)
		must(g.CreateVertexType(c, "user", userSchema, "handle", "country"))
		must(g.CreateVertexType(c, "post", postSchema, "id"))
		must(g.CreateEdgeType(c, "friend", nil))
		must(g.CreateEdgeType(c, "authored", nil))
		must(g.CreateEdgeType(c, "liked", nil))

		// Create users.
		users := make(map[string]a1.VertexPtr)
		countries := []string{"us", "no", "jp", "br"}
		must(db.Transaction(c, func(tx *a1.Tx) error {
			for i := 0; i < 24; i++ {
				handle := fmt.Sprintf("user%02d", i)
				vp, err := g.CreateVertex(tx, "user", a1.Record(
					a1.FV(0, a1.Str(handle)),
					a1.FV(1, a1.Str(countries[i%len(countries)])),
					a1.FV(2, a1.DateDays(int64(19000+i))),
				))
				if err != nil {
					return err
				}
				users[handle] = vp
			}
			return nil
		}))

		// befriend makes BOTH directed edges atomically.
		befriend := func(a, b string) error {
			return db.Transaction(c, func(tx *a1.Tx) error {
				if err := g.CreateEdge(tx, users[a], "friend", users[b], a1.Null); err != nil {
					return err
				}
				return g.CreateEdge(tx, users[b], "friend", users[a], a1.Null)
			})
		}

		// A concurrent befriend storm: rings and chords, many goroutines.
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 6; i++ {
					a := fmt.Sprintf("user%02d", (w*6+i)%24)
					b := fmt.Sprintf("user%02d", (w*6+i+7)%24)
					if err := befriend(a, b); err != nil {
						log.Printf("befriend %s-%s: %v", a, b, err)
					}
				}
			}(w)
		}
		wg.Wait()

		// Invariant check: friendship is perfectly symmetric everywhere.
		rtx := db.ReadTransaction(c)
		asym := 0
		for _, vp := range users {
			must(g.EnumerateEdges(rtx, vp, a1.DirOut, "friend", func(he a1.HalfEdge) bool {
				if _, ok, _ := g.GetEdge(rtx, he.Other, "friend", vp); !ok {
					asym++
				}
				return true
			}))
		}
		fmt.Printf("asymmetric friendships after concurrent storm: %d (must be 0)\n", asym)

		// Posts + likes.
		must(db.Transaction(c, func(tx *a1.Tx) error {
			post, err := g.CreateVertex(tx, "post", a1.Record(
				a1.FV(0, a1.Str("p1")),
				a1.FV(1, a1.Str("hello graphs")),
			))
			if err != nil {
				return err
			}
			if err := g.CreateEdge(tx, users["user00"], "authored", post, a1.Null); err != nil {
				return err
			}
			for _, u := range []string{"user07", "user14", "user21"} {
				if err := g.CreateEdge(tx, users[u], "liked", post, a1.Null); err != nil {
					return err
				}
			}
			return nil
		}))

		// A1QL: who liked user00's posts?
		res, err := db.Query(c, g, `{
			"id": "user00", "_type": "user",
			"_out_edge": {"_type": "authored", "_vertex": {
				"_in_edge": {"_type": "liked", "_vertex": {"_select": ["handle", "country"]}}
			}}
		}`)
		must(err)
		fmt.Println("users who liked user00's posts:")
		for _, row := range res.Rows {
			fmt.Printf("  %s (%s)\n", row.Values["handle"], row.Values["country"])
		}

		// Secondary index: users by country.
		count := 0
		must(g.IndexScan(rtx, "user", "country", a1.Str("no"), func(a1.VertexPtr) bool {
			count++
			return true
		}))
		fmt.Printf("norwegian users via secondary index: %d\n", count)

		// Friends-of-friends traversal for one user.
		res, err = db.Query(c, g, `{
			"id": "user00", "_type": "user",
			"_out_edge": {"_type": "friend", "_vertex": {
				"_out_edge": {"_type": "friend", "_vertex": {"_select": ["_count(*)"]}}
			}}
		}`)
		must(err)
		fmt.Printf("friends-of-friends of user00: %d\n", res.Count)
	})
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
