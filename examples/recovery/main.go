// Disaster recovery walkthrough (paper §4): writes replicate through the
// FaRM-resident replication log into the durable ObjectStore; after a
// simulated datacenter loss a fresh cluster recovers the graph in either
// mode — consistent (snapshot at the durability watermark tR) or
// best-effort (freshest internally-consistent state) — including the
// paper's partial-transaction scenarios.
package main

import (
	"fmt"
	"log"

	"a1"
)

var nodeSchema = a1.NewSchema("node",
	a1.Req(0, "id", a1.TString),
	a1.Opt(1, "note", a1.TString),
)

func main() {
	// Primary cluster with consistent-mode DR enabled.
	db, err := a1.Open(a1.Options{Machines: 9, EnableDR: true, DRMode: a1.RecoverConsistent})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	var g *a1.Graph
	db.Run(func(c *a1.Ctx) {
		must(db.CreateTenant(c, "t"))
		must(db.CreateGraph(c, "t", "g"))
		g, err = db.OpenGraph(c, "t", "g")
		must(err)
		must(g.CreateVertexType(c, "node", nodeSchema, "id"))
		must(g.CreateEdgeType(c, "link", nil))
		must(db.EnableReplication(c, g))

		// A committed, fully replicated transaction.
		must(db.Transaction(c, func(tx *a1.Tx) error {
			a, err := g.CreateVertex(tx, "node", a1.Record(a1.FV(0, a1.Str("A"))))
			if err != nil {
				return err
			}
			b, err := g.CreateVertex(tx, "node", a1.Record(a1.FV(0, a1.Str("B"))))
			if err != nil {
				return err
			}
			return g.CreateEdge(tx, a, "link", b, a1.Null)
		}))
		n, err := db.FlushReplication(c)
		must(err)
		fmt.Printf("replication log drained: %d async entries (rest flushed synchronously)\n", n)

		// A second transaction commits but its log entries never reach the
		// durable store — the paper's partial-replication scenario.
		db.DurableStore().SetUnavailable(true)
		must(db.Transaction(c, func(tx *a1.Tx) error {
			cN, err := g.CreateVertex(tx, "node", a1.Record(a1.FV(0, a1.Str("C"))))
			if err != nil {
				return err
			}
			a, _, err := g.LookupVertex(tx, "node", a1.Str("A"))
			if err != nil {
				return err
			}
			return g.CreateEdge(tx, a, "link", cN, a1.Null)
		}))
		db.DurableStore().SetUnavailable(false)
		fmt.Println("committed a transaction whose replication is still pending...")
	})

	// 💥 The datacenter burns down. Only the ObjectStore survives.
	store := db.DurableStore()

	// Consistent recovery: exactly the state at the durability watermark.
	fresh1, err := a1.Open(a1.Options{Machines: 9})
	must(err)
	defer fresh1.Close()
	fresh1.Run(func(c *a1.Ctx) {
		stats, err := fresh1.Recover(c, store, "t", "g", a1.RecoverConsistent)
		must(err)
		fmt.Printf("consistent recovery: %d vertices, %d edges (tR=%d)\n",
			stats.Vertices, stats.Edges, stats.Watermark)
		rg, err := fresh1.OpenGraph(c, "t", "g")
		must(err)
		rtx := fresh1.ReadTransaction(c)
		_, hasC, _ := rg.LookupVertex(rtx, "node", a1.Str("C"))
		fmt.Printf("  vertex C (unreplicated tx) present: %v  <- consistent recovery excludes the whole transaction\n", hasC)
	})

	// Best-effort recovery of the same store: at least as fresh, dangling
	// edges dropped.
	fresh2, err := a1.Open(a1.Options{Machines: 9})
	must(err)
	defer fresh2.Close()
	fresh2.Run(func(c *a1.Ctx) {
		stats, err := fresh2.Recover(c, store, "t", "g", a1.RecoverBestEffort)
		must(err)
		fmt.Printf("best-effort recovery: %d vertices, %d edges, %d dangling edges dropped\n",
			stats.Vertices, stats.Edges, stats.DanglingDrop)
		rg, err := fresh2.OpenGraph(c, "t", "g")
		must(err)
		rtx := fresh2.ReadTransaction(c)
		a, _, _ := rg.LookupVertex(rtx, "node", a1.Str("A"))
		edges := 0
		must(rg.EnumerateEdges(rtx, a, a1.DirOut, "link", func(a1.HalfEdge) bool {
			edges++
			return true
		}))
		fmt.Printf("  A's outgoing edges: %d (A->B survived; no dangling A->C)\n", edges)
	})
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
