// Knowledge graph serving: the paper's flagship workload (§5, §6). Loads
// the synthetic film/entertainment knowledge graph — semi-structured
// `entity` vertices with a string map payload, strongly-typed edges — and
// runs the four Table 2 queries end-to-end, including continuation paging.
package main

import (
	"flag"
	"fmt"
	"log"

	"a1"
	"a1/internal/bench"
	"a1/internal/workload"
)

func main() {
	machines := flag.Int("machines", 24, "cluster size")
	flag.Parse()

	db, err := a1.Open(a1.Options{Machines: *machines})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	var g *a1.Graph
	db.Run(func(c *a1.Ctx) {
		must(db.CreateTenant(c, "bing"))
		must(db.CreateGraph(c, "bing", "kg"))
		g, err = db.OpenGraph(c, "bing", "kg")
		must(err)
		kg := workload.NewFilmKG(workload.TestParams())
		must(kg.Load(c, g))
		fmt.Printf("knowledge graph: %d vertices, %d edges on %d machines\n\n",
			kg.Stats.Vertices, kg.Stats.Edges, *machines)

		queries := []struct{ name, desc, doc string }{
			{"Q1", "count actors who worked with Steven Spielberg", bench.Q1},
			{"Q2", "count actors who have played Batman", bench.Q2},
			{"Q3", "war movies with Spielberg directing and Tom Hanks starring", bench.Q3},
			{"Q4", "count films by actors who worked with Tom Hanks", bench.Q4},
		}
		for _, q := range queries {
			res, err := db.Query(c, g, q.doc)
			must(err)
			fmt.Printf("%s — %s\n", q.name, q.desc)
			if res.HasCount {
				fmt.Printf("   count = %d\n", res.Count)
			}
			for _, row := range res.Rows {
				fmt.Printf("   %v\n", row.Values)
			}
			fmt.Printf("   (%d hops, %d vertices read, %d objects, %.0f%% local reads)\n\n",
				res.Stats.Hops, res.Stats.VerticesRead, res.Stats.ObjectsRead,
				res.Stats.LocalFrac*100)
		}

		// Large result sets stream through a cursor: Next pages through
		// continuation tokens (§3.4) behind the scenes — no manual Fetch
		// loop.
		fmt.Println("streamed scan of every actor entity:")
		rows, err := db.QueryRows(c, g, `{
			"_hints": {"page_size": 25},
			"_type": "entity", "str_str_map[kind]": "actor", "_select": ["id"]
		}`)
		must(err)
		defer rows.Close(c)
		n := 0
		for rows.Next(c) {
			n++
		}
		must(rows.Err())
		fmt.Printf("   %d actors over %d pages\n", n, rows.Pages())

		// The same shape as a prepared statement: parse once, re-execute
		// with fresh bind values ($kind) and zero parses.
		pq, err := db.Prepare(c, g, `{
			"_type": "entity", "str_str_map[kind]": "$kind", "_select": ["_count(*)"]
		}`)
		must(err)
		for _, kind := range []string{"actor", "film", "genre"} {
			res, err := pq.Exec(c, a1.Params{"kind": kind})
			must(err)
			fmt.Printf("   prepared count(kind=%s) = %d (plan cache hits: %d)\n",
				kind, res.Count, res.Stats.PlanCacheHits)
		}
	})
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
