// Quickstart: the paper's Figure 5 example — films, actors and the Acted
// relationship — created, queried and updated through the public API.
package main

import (
	"fmt"
	"log"

	"a1"
)

func main() {
	// A small in-process cluster: 8 simulated machines, 3-way replication.
	db, err := a1.Open(a1.Options{Machines: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Schemas are Bond structs: numbered, typed fields (paper §3).
	actor := a1.NewSchema("Actor",
		a1.Req(0, "name", a1.TString),
		a1.Opt(1, "origin", a1.TString),
		a1.Opt(2, "birth_date", a1.TDate),
	)
	film := a1.NewSchema("Film",
		a1.Req(0, "name", a1.TString),
		a1.Opt(1, "genre", a1.TString),
		a1.Opt(2, "release_date", a1.TDate),
	)
	acted := a1.NewSchema("Acted",
		a1.Opt(0, "character", a1.TString),
	)

	db.Run(func(c *a1.Ctx) {
		// Control plane: tenant -> graph -> types.
		must(db.CreateTenant(c, "bing"))
		must(db.CreateGraph(c, "bing", "films"))
		g, err := db.OpenGraph(c, "bing", "films")
		must(err)
		must(g.CreateVertexType(c, "actor", actor, "name", "origin"))
		must(g.CreateVertexType(c, "film", film, "name"))
		must(g.CreateEdgeType(c, "acted", acted))

		// Data plane: everything inside one atomic transaction — the film,
		// the actor and both half-edges commit or abort together, so no
		// partial edge can ever exist (§1's TAO contrast).
		var bigPtr, hanksPtr a1.VertexPtr
		must(db.Transaction(c, func(tx *a1.Tx) error {
			bigPtr, err = g.CreateVertex(tx, "film", a1.Record(
				a1.FV(0, a1.Str("Big")),
				a1.FV(1, a1.Str("comedy")),
				a1.FV(2, a1.DateDays(6727)),
			))
			if err != nil {
				return err
			}
			hanksPtr, err = g.CreateVertex(tx, "actor", a1.Record(
				a1.FV(0, a1.Str("Tom Hanks")),
				a1.FV(1, a1.Str("usa")),
			))
			if err != nil {
				return err
			}
			perkinsPtr, err := g.CreateVertex(tx, "actor", a1.Record(
				a1.FV(0, a1.Str("Elizabeth Perkins")),
				a1.FV(1, a1.Str("usa")),
			))
			if err != nil {
				return err
			}
			if err := g.CreateEdge(tx, bigPtr, "acted", perkinsPtr,
				a1.Record(a1.FV(0, a1.Str("Susan Lawrence")))); err != nil {
				return err
			}
			return g.CreateEdge(tx, bigPtr, "acted", hanksPtr,
				a1.Record(a1.FV(0, a1.Str("Josh Baskin"))))
		}))

		// Point read through the primary index.
		rtx := db.ReadTransaction(c)
		vp, ok, err := g.LookupVertex(rtx, "actor", a1.Str("Tom Hanks"))
		must(err)
		fmt.Printf("lookup Tom Hanks: found=%v ptr=%v\n", ok, vp.Addr)

		// Edge traversal with data.
		role, ok, err := g.GetEdge(rtx, bigPtr, "acted", hanksPtr)
		must(err)
		ch, _ := role.Field(0)
		fmt.Printf("edge Big -acted-> Tom Hanks: found=%v character=%s\n", ok, ch)

		// A1QL through the frontend tier: who acted in Big?
		res, err := db.Query(c, g, `{
			"id": "Big",
			"_out_edge": {"_type": "acted", "_vertex": {"_select": ["name", "origin"]}}
		}`)
		must(err)
		for _, row := range res.Rows {
			fmt.Printf("A1QL row: name=%s origin=%s\n",
				row.Values["name"], row.Values["origin"])
		}
		fmt.Printf("query stats: %d hops, %d objects read, %v\n",
			res.Stats.Hops, res.Stats.ObjectsRead, res.Stats.Elapsed)

		// Result shaping: order the cast by name, bound the result, and
		// aggregate — the count is computed during batch execution without
		// materializing rows.
		res, err = db.Query(c, g, `{
			"id": "Big",
			"_out_edge": {"_type": "acted", "_vertex": {
				"_select": ["name"], "_orderby": "name", "_limit": 10
			}}
		}`)
		must(err)
		for i, row := range res.Rows {
			fmt.Printf("cast %d: %s\n", i+1, row.Values["name"])
		}
		res, err = db.Query(c, g, `{
			"id": "Big",
			"_out_edge": {"_type": "acted", "_vertex": {
				"_select": ["_count(*)", "_min(name)"]
			}}
		}`)
		must(err)
		fmt.Printf("cast size: %d, first alphabetically: %s\n",
			res.Count, res.Aggregates["_min(name)"])

		// Prepared statement: parse and validate once, re-execute with
		// fresh "$name" bind values — zero parses per execution.
		pq, err := db.Prepare(c, g, `{
			"id": "$film",
			"_out_edge": {"_type": "acted", "_vertex": {
				"_select": ["name"], "_limit": "$k"
			}}
		}`)
		must(err)
		res, err = pq.Exec(c, a1.Params{"film": "Big", "k": 5})
		must(err)
		fmt.Printf("prepared query: %d cast rows (plan cache hits: %d)\n",
			len(res.Rows), res.Stats.PlanCacheHits)

		// Streaming cursor: iterate the full result set; continuation
		// pages are fetched behind the scenes.
		rows, err := db.QueryRows(c, g, `{
			"id": "Big",
			"_out_edge": {"_type": "acted", "_vertex": {"_select": ["name"]}}
		}`)
		must(err)
		defer rows.Close(c)
		streamed := 0
		for rows.Next(c) {
			streamed++
		}
		must(rows.Err())
		fmt.Printf("cursor streamed %d rows\n", streamed)

		// Secondary index scan (origin was declared as a secondary index).
		count := 0
		must(g.IndexScan(rtx, "actor", "origin", a1.Str("usa"), func(a1.VertexPtr) bool {
			count++
			return true
		}))
		fmt.Printf("actors from usa (secondary index): %d\n", count)
	})
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
