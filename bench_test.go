package a1_test

import (
	"fmt"
	"os"
	"testing"

	"a1"
	"a1/internal/bench"
	"a1/internal/workload"
)

// One benchmark per paper table/figure (DESIGN.md per-experiment index).
// Each iteration regenerates the experiment on the simulated cluster and
// reports the headline numbers as custom metrics; `cmd/a1bench` prints the
// full series. Scale defaults to the laptop-sized ScaleTest; set
// A1_BENCH_SCALE=paper for the 245-machine testbed shape.

func benchSpec() bench.Spec {
	if os.Getenv("A1_BENCH_SCALE") == "paper" {
		return bench.DefaultSpec(bench.ScalePaper)
	}
	s := bench.DefaultSpec(bench.ScaleTest)
	s.Machines = 16
	s.Racks = 4
	s.Rates = []float64{500, 2000}
	s.QueriesPerPt = 100
	return s
}

// reportSweep surfaces the lowest- and highest-load rows of a latency
// sweep.
func reportSweep(b *testing.B, r *bench.Report) {
	b.Helper()
	if len(r.Rows) == 0 {
		b.Fatal("empty report")
	}
	lo, hi := r.Rows[0], r.Rows[len(r.Rows)-1]
	b.ReportMetric(lo[1], "ms_avg_low_load")
	b.ReportMetric(hi[1], "ms_avg_high_load")
	b.ReportMetric(hi[3], "ms_p99_high_load")
}

// BenchmarkFig10Q1Latency regenerates Figure 10 (Q1 latency vs load).
func BenchmarkFig10Q1Latency(b *testing.B) {
	spec := benchSpec()
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig10(spec)
		if err != nil {
			b.Fatal(err)
		}
		reportSweep(b, r)
	}
}

// BenchmarkFig11RDMARead regenerates Figure 11 (RDMA time vs #reads).
func BenchmarkFig11RDMARead(b *testing.B) {
	spec := benchSpec()
	spec.Rates = spec.Rates[:1]
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig11(spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) > 0 {
			b.ReportMetric(r.Rows[0][2], "us_per_rdma_read")
		}
	}
}

// BenchmarkFig12Q2Latency regenerates Figure 12 (Q2, Batman performances).
func BenchmarkFig12Q2Latency(b *testing.B) {
	spec := benchSpec()
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig12(spec)
		if err != nil {
			b.Fatal(err)
		}
		reportSweep(b, r)
	}
}

// BenchmarkFig13Q3Latency regenerates Figure 13 (Q3 star pattern).
func BenchmarkFig13Q3Latency(b *testing.B) {
	spec := benchSpec()
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig13(spec)
		if err != nil {
			b.Fatal(err)
		}
		reportSweep(b, r)
	}
}

// BenchmarkFig14Scalability regenerates Figure 14 (latency vs throughput
// across cluster sizes).
func BenchmarkFig14Scalability(b *testing.B) {
	spec := benchSpec()
	spec.QueriesPerPt = 60
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig14(spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) > 0 {
			b.ReportMetric(r.Rows[0][1], "ms_avg_smallest_cluster_low_load")
		}
	}
}

// BenchmarkQ4Throughput regenerates the in-text Q4 stress numbers.
func BenchmarkQ4Throughput(b *testing.B) {
	spec := benchSpec()
	spec.QueriesPerPt = 60
	for i := 0; i < b.N; i++ {
		r, err := bench.Q4Stress(spec)
		if err != nil {
			b.Fatal(err)
		}
		last := r.Rows[len(r.Rows)-1]
		b.ReportMetric(last[3], "vertices_per_query")
		b.ReportMetric(last[5], "vertex_reads_per_sec_per_machine")
	}
}

// BenchmarkLocality regenerates the §6 in-text locality measurement.
func BenchmarkLocality(b *testing.B) {
	spec := benchSpec()
	for i := 0; i < b.N; i++ {
		r, err := bench.Locality(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0][3], "local_read_pct_shipped")
	}
}

// BenchmarkBaselineComparison regenerates the §5 two-tier comparison.
func BenchmarkBaselineComparison(b *testing.B) {
	spec := benchSpec()
	for i := 0; i < b.N; i++ {
		r, err := bench.BaselineCompare(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[1][1]/r.Rows[0][1], "speedup_vs_two_tier")
	}
}

// BenchmarkFastRestart regenerates the §5.3 fast-restart drill.
func BenchmarkFastRestart(b *testing.B) {
	spec := benchSpec()
	for i := 0; i < b.N; i++ {
		r, err := bench.FastRestart(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[1][1]/r.Rows[0][1], "dr_vs_fast_restart_ratio")
	}
}

// --- Real wall-clock micro-benchmarks (Direct mode, -benchmem) ---

func directKG(b *testing.B) (*a1.DB, *a1.Graph) {
	b.Helper()
	db, err := a1.Open(a1.Options{Machines: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(db.Close)
	var g *a1.Graph
	var loadErr error
	db.Run(func(c *a1.Ctx) {
		if loadErr = db.CreateTenant(c, "bing"); loadErr != nil {
			return
		}
		if loadErr = db.CreateGraph(c, "bing", "kg"); loadErr != nil {
			return
		}
		g, loadErr = db.OpenGraph(c, "bing", "kg")
		if loadErr != nil {
			return
		}
		kg := workload.NewFilmKG(workload.TestParams())
		loadErr = kg.Load(c, g)
	})
	if loadErr != nil {
		b.Fatal(loadErr)
	}
	return db, g
}

// BenchmarkDirectQ1 measures real end-to-end Q1 throughput of the engine.
func BenchmarkDirectQ1(b *testing.B) {
	db, g := directKG(b)
	db.Run(func(c *a1.Ctx) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryAt(c, g, bench.Q1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDirectVertexRead measures point reads through the full stack.
func BenchmarkDirectVertexRead(b *testing.B) {
	db, g := directKG(b)
	db.Run(func(c *a1.Ctx) {
		tx := db.ReadTransaction(c)
		vp, ok, err := g.LookupVertex(tx, "entity", a1.Str("tom.hanks"))
		if err != nil || !ok {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rtx := db.ReadTransaction(c)
			if _, err := g.ReadVertex(rtx, vp); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDirectCreateVertex measures transactional insert throughput.
func BenchmarkDirectCreateVertex(b *testing.B) {
	db, g := directKG(b)
	db.Run(func(c *a1.Ctx) {
		b.ResetTimer()
		i := 0
		for i < b.N {
			err := db.Transaction(c, func(tx *a1.Tx) error {
				for batch := 0; batch < 16 && i < b.N; batch++ {
					id := fmt.Sprintf("bench.v.%09d", i)
					_, err := g.CreateVertex(tx, "entity", a1.Record(
						a1.FV(0, a1.Str(id)),
						a1.FV(1, a1.ListOf(a1.Str(id))),
					))
					if err != nil {
						return err
					}
					i++
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDirectEdgeCreate measures transactional edge insert throughput.
func BenchmarkDirectEdgeCreate(b *testing.B) {
	db, g := directKG(b)
	db.Run(func(c *a1.Ctx) {
		// A dedicated hub so inserts don't conflict with KG data.
		var hub a1.VertexPtr
		err := db.Transaction(c, func(tx *a1.Tx) error {
			var err error
			hub, err = g.CreateVertex(tx, "entity", a1.Record(a1.FV(0, a1.Str("bench.hub"))))
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
		spokes := make([]a1.VertexPtr, b.N)
		for base := 0; base < b.N; base += 256 {
			end := base + 256
			if end > b.N {
				end = b.N
			}
			err = db.Transaction(c, func(tx *a1.Tx) error {
				for i := base; i < end; i++ {
					spokes[i], err = g.CreateVertex(tx, "entity", a1.Record(
						a1.FV(0, a1.Str(fmt.Sprintf("bench.spoke.%09d", i)))))
					if err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		i := 0
		for i < b.N {
			err := db.Transaction(c, func(tx *a1.Tx) error {
				for batch := 0; batch < 16 && i < b.N; batch++ {
					if err := g.CreateEdge(tx, hub, "film.actor", spokes[i], a1.Null); err != nil {
						return err
					}
					i++
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
